#pragma once
// Weighted-FIB (WCMP) model checking with Report-style violation codes.
//
// te::verify_weighted_fib answers "is this table safe to install" with a
// first-failure description; this validator is its src/check twin: it
// walks the same invariants but accumulates every finding under a stable
// dotted code, so --selfcheck benches and negative-control tests can
// filter programmatically. Codes:
//
//   te.wfib.bad_link      rule's link id is out of range, tombstoned, or
//                         not incident to the switch it is installed at
//   te.wfib.zero_weight   stored rule with weight 0 (compilers prune)
//   te.wfib.weight_sum    non-empty entry's weights do not sum to the
//                         table's weight budget (quantization must
//                         conserve the budget exactly)
//   te.wfib.disconnected  a checked pair is disconnected in the topology
//   te.wfib.blackhole     a walk reaches a switch (not dst) with no
//                         positive-weight rule toward dst
//   te.wfib.loop          positive-weight rules form a forwarding cycle
//                         toward dst
//   te.wfib.hop_limit     some greedy walk exceeds the hop limit

#include <utility>
#include <vector>

#include "check/report.hpp"
#include "te/weighted_fib.hpp"
#include "topo/topology.hpp"

namespace flattree::check {

struct WeightedFibCheckOptions {
  /// Longest admissible greedy walk (matches te::verify_weighted_fib).
  std::uint32_t hop_limit = 32;
};

/// Model-checks `fib` for every ordered pair in `pairs`: structural rule
/// hygiene (bad_link / zero_weight / weight_sum) over the whole table,
/// then reachability, loop-freedom, and the hop bound over every
/// positive-weight walk of the checked pairs. See the header comment for
/// the violation codes.
Report validate_weighted_fib(const topo::Topology& t, const te::WeightedFib& fib,
                             const std::vector<std::pair<graph::NodeId, graph::NodeId>>& pairs,
                             const WeightedFibCheckOptions& options = {});

}  // namespace flattree::check
