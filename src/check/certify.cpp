#include "check/certify.hpp"

#include <cmath>
#include <limits>
#include <sstream>

namespace flattree::check {

namespace {

/// Tolerance-aware x <= y.
bool leq(double x, double y, const CertifyOptions& o) {
  return x <= y * (1.0 + o.rel_tol) + o.abs_tol;
}

}  // namespace

Report certify(const graph::Graph& g, const std::vector<mcf::Commodity>& commodities,
               const mcf::McfResult& result, const CertifyOptions& options) {
  count_run();
  Report report;
  const std::size_t arcs = g.link_count() * 2;

  report.note_check();
  if (result.arc_flow.size() != arcs) {
    report.add("mcf.arc_flow_size",
               "arc_flow has " + std::to_string(result.arc_flow.size()) +
                   " entries, expected " + std::to_string(arcs));
    return report;  // nothing below is meaningful
  }
  report.note_check();
  if (result.commodity_routed.size() != commodities.size()) {
    report.add("mcf.routed_size",
               "commodity_routed has " + std::to_string(result.commodity_routed.size()) +
                   " entries for " + std::to_string(commodities.size()) + " commodities");
    return report;
  }

  // (1) Capacity feasibility of the rescaled arc flows. Arc 2l = link l
  // (a->b), arc 2l+1 = (b->a), each with the full link capacity.
  report.note_check();
  for (std::size_t a = 0; a < arcs; ++a) {
    double cap = g.link(static_cast<graph::LinkId>(a / 2)).capacity;
    if (leq(result.arc_flow[a], cap, options)) continue;
    std::ostringstream os;
    os << "arc " << a << " (link " << a / 2 << (a % 2 == 0 ? " forward" : " reverse")
       << ") carries " << result.arc_flow[a] << " over capacity " << cap;
    report.add("mcf.capacity", os.str());
  }

  // (2) Flow conservation: the divergence of arc_flow at every node must
  // match the net supply implied by the per-commodity routed totals. This
  // is the aggregate of per-commodity conservation — each commodity's
  // paths leave its source and enter its sink, so summed over commodities
  // the only nonzero divergences sit at commodity endpoints.
  report.note_check();
  std::vector<double> divergence(g.node_count(), 0.0);
  std::vector<double> gross(g.node_count(), 0.0);  // tolerance scale per node
  for (std::size_t a = 0; a < arcs; ++a) {
    const graph::Link& link = g.link(static_cast<graph::LinkId>(a / 2));
    graph::NodeId tail = a % 2 == 0 ? link.a : link.b;
    graph::NodeId head = a % 2 == 0 ? link.b : link.a;
    divergence[tail] += result.arc_flow[a];
    divergence[head] -= result.arc_flow[a];
    gross[tail] += result.arc_flow[a];
    gross[head] += result.arc_flow[a];
  }
  for (std::size_t i = 0; i < commodities.size(); ++i) {
    divergence[commodities[i].src] -= result.commodity_routed[i];
    divergence[commodities[i].dst] += result.commodity_routed[i];
    gross[commodities[i].src] += result.commodity_routed[i];
    gross[commodities[i].dst] += result.commodity_routed[i];
  }
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    double slack = options.abs_tol + options.rel_tol * std::max(1.0, gross[v]);
    if (std::abs(divergence[v]) <= slack) continue;
    std::ostringstream os;
    os << "node " << v << " has net divergence " << divergence[v]
       << " beyond the routed supply (tolerance " << slack << ")";
    report.add("mcf.conservation", os.str());
  }

  // (3) Primal support: every commodity ships at least lambda_lower times
  // its demand — otherwise lambda_lower was not actually achieved.
  report.note_check();
  for (std::size_t i = 0; i < commodities.size(); ++i) {
    double required = result.lambda_lower * commodities[i].demand;
    double slack = options.abs_tol + options.rel_tol * std::max(1.0, required);
    if (result.commodity_routed[i] >= required - slack) continue;
    std::ostringstream os;
    os << "commodity " << i << " (" << commodities[i].src << " -> " << commodities[i].dst
       << ") routed " << result.commodity_routed[i] << " < lambda_lower * demand = "
       << required;
    report.add("mcf.primal_support", os.str());
  }

  // (4) Bracket sanity. lambda_upper is +inf when the dual sweep was
  // skipped, which brackets trivially.
  report.note_check();
  if (!leq(result.lambda_lower, result.lambda_upper, options)) {
    std::ostringstream os;
    os << "lambda_lower " << result.lambda_lower << " exceeds lambda_upper "
       << result.lambda_upper;
    report.add("mcf.bracket", os.str());
  }

  // (5) FPTAS gap, converged runs only (truncated runs carry no promise).
  if (options.epsilon > 0.0 && options.epsilon < 1.0 / 3.0 && !result.truncated &&
      std::isfinite(result.lambda_upper)) {
    report.note_check();
    double floor = (1.0 - 3.0 * options.epsilon) * result.lambda_upper;
    if (!leq(floor, result.lambda_lower, options)) {
      std::ostringstream os;
      os << "lambda_lower " << result.lambda_lower << " below the (1 - 3*eps) FPTAS floor "
         << floor << " of lambda_upper " << result.lambda_upper << " (eps "
         << options.epsilon << ")";
      report.add("mcf.fptas_gap", os.str());
    }
  }
  return report;
}

Report certify_served(const graph::Graph& g,
                      const std::vector<mcf::Commodity>& commodities,
                      const mcf::McfResult& result, const CertifyOptions& options) {
  count_run();
  Report report;

  // Unreachable index list well-formed: strictly ascending, in range.
  report.note_check();
  bool indices_ok = true;
  for (std::size_t j = 0; j < result.unreachable.size(); ++j) {
    std::uint32_t idx = result.unreachable[j];
    if (idx >= commodities.size() || (j > 0 && idx <= result.unreachable[j - 1])) {
      std::ostringstream os;
      os << "unreachable[" << j << "] = " << idx << " is "
         << (idx >= commodities.size() ? "out of range" : "not strictly ascending");
      report.add("mcf.unreachable_index", os.str());
      indices_ok = false;
    }
  }
  if (!indices_ok) return report;  // the filtering below would be garbage

  report.note_check();
  if (result.commodity_routed.size() != commodities.size()) {
    report.add("mcf.routed_size",
               "commodity_routed has " + std::to_string(result.commodity_routed.size()) +
                   " entries for " + std::to_string(commodities.size()) + " commodities");
    return report;
  }

  // Excluded commodities must carry exactly zero flow — anything else
  // means the solver routed through a cut it declared impassable.
  report.note_check();
  std::vector<char> excluded(commodities.size(), 0);
  for (std::uint32_t idx : result.unreachable) {
    excluded[idx] = 1;
    if (result.commodity_routed[idx] != 0.0) {
      std::ostringstream os;
      os << "unreachable commodity " << idx << " (" << commodities[idx].src << " -> "
         << commodities[idx].dst << ") routed " << result.commodity_routed[idx]
         << ", expected exactly 0";
      report.add("mcf.unreachable_routed", os.str());
    }
  }

  // served_fraction must equal the demand-weighted reachable share.
  report.note_check();
  double total_demand = 0.0, reachable_demand = 0.0;
  for (std::size_t i = 0; i < commodities.size(); ++i) {
    total_demand += commodities[i].demand;
    if (!excluded[i]) reachable_demand += commodities[i].demand;
  }
  double expected = total_demand > 0.0 ? reachable_demand / total_demand : 0.0;
  double slack = options.abs_tol + options.rel_tol;
  if (std::abs(result.served_fraction - expected) > slack) {
    std::ostringstream os;
    os << "served_fraction " << result.served_fraction
       << " != demand-weighted reachable share " << expected;
    report.add("mcf.served_fraction", os.str());
  }

  // Full battery on the reachable sub-instance. With nothing excluded this
  // is certify() verbatim; with everything excluded it certifies the
  // degenerate zero solve (zero arc flows, empty commodity set).
  std::vector<mcf::Commodity> reachable;
  mcf::McfResult sub = result;
  sub.commodity_routed.clear();
  sub.unreachable.clear();
  sub.served_fraction = 1.0;
  for (std::size_t i = 0; i < commodities.size(); ++i) {
    if (excluded[i]) continue;
    reachable.push_back(commodities[i]);
    sub.commodity_routed.push_back(result.commodity_routed[i]);
  }
  report.merge(certify(g, reachable, sub, options));
  return report;
}

}  // namespace flattree::check
