#pragma once
// Differential harness: Garg-Koenemann vs the exact LP on small random
// instances.
//
// Certificates (check/certify.hpp) prove a result is internally
// consistent; only an independent solver proves it is *right*. This
// harness draws a small random connected multigraph (heterogeneous
// capacities, optional parallel links) and a random commodity set, solves
// it with both mcf::max_concurrent_flow and mcf::max_concurrent_flow_exact,
// and reports every disagreement:
//
//   * the exact optimum must land inside [lambda_lower, lambda_upper];
//   * lambda_lower must be within the requested gap factor of the exact
//     optimum (default 1 + epsilon — the empirical FPTAS agreement the
//     experiments rely on, tighter than the (1 - 3*eps) worst case);
//   * the GK result must pass its own certificate.
//
// tests/check/differential_test.cpp sweeps seeds; benches do not run this
// (the exact LP is exponential in practice beyond toy sizes).

#include <cstdint>

#include "check/certify.hpp"
#include "check/report.hpp"
#include "graph/graph.hpp"
#include "mcf/commodity.hpp"
#include "mcf/garg_koenemann.hpp"

namespace flattree::check {

struct DifferentialSpec {
  std::uint64_t seed = 1;
  std::size_t nodes = 6;
  std::size_t extra_links = 4;   ///< links beyond the random spanning tree
  std::size_t commodities = 3;
  double epsilon = 0.05;         ///< GK accuracy knob
  double cap_lo = 0.5;           ///< capacity range (uniform)
  double cap_hi = 2.0;
  bool parallel_links = true;    ///< allow duplicate (a, b) links
  /// Required lambda_lower >= exact / gap_factor; 0 means 1 + epsilon.
  double gap_factor = 0.0;
};

struct DifferentialOutcome {
  graph::Graph graph;
  std::vector<mcf::Commodity> commodities;
  double exact = 0.0;
  mcf::McfResult gk;
  Report report;  ///< empty iff GK and the exact LP agree
};

/// Runs one differential case. Codes (beyond certify()'s):
/// diff.exact_unsolved, diff.lower_exceeds_exact, diff.upper_below_exact,
/// diff.gap.
DifferentialOutcome run_differential(const DifferentialSpec& spec);

}  // namespace flattree::check
