#pragma once
// Topology invariant validators (the "is this network physically
// plausible" battery).
//
// Topology::validate() throws on the two hard invariants (port budget,
// connectivity); these validators cover the wider battery in report form:
// self links, undeclared parallel links, non-positive capacities, servers
// homed on dead switches, connectivity with declared isolated switches
// (degraded topologies keep failed switches as isolated nodes), and
// equipment parity between two builds that claim the same hardware
// (fat-tree vs Jellyfish vs two-stage vs any flat-tree conversion of the
// same (k, oversubscription) — conversions rewire, they never add ports).

#include <cstdint>
#include <vector>

#include "check/report.hpp"
#include "topo/topology.hpp"

namespace flattree::check {

struct TopologyCheckOptions {
  /// Parallel links are legal in a multigraph; Jellyfish-style builds
  /// promise simple graphs, so their checks set this to false.
  bool allow_parallel_links = true;
  /// Degraded topologies keep failed switches as isolated nodes so ids
  /// stay stable; set true to exempt zero-degree switches from the
  /// connectivity requirement (the live subgraph must still be one
  /// component).
  bool allow_isolated_switches = false;
  /// Require the switch graph (or its live subgraph, see above) to be one
  /// connected component.
  bool require_connected = true;
  /// Servers known to be stranded (e.g. DegradedTopology::stranded_servers)
  /// — exempt from the live-host check.
  std::vector<topo::ServerId> declared_stranded;
};

/// Runs the full invariant battery over `t`. Codes: topo.self_link,
/// topo.link_endpoint, topo.capacity, topo.parallel_link,
/// topo.port_budget, topo.server_host, topo.stranded_server,
/// topo.connectivity.
Report validate(const topo::Topology& t, const TopologyCheckOptions& options = {});

/// Checks that two topologies are built from the same equipment: switch
/// count, per-kind switch counts, per-kind port-budget multisets, server
/// count, and (when `require_equal_links`) link count — every port a
/// conversion uses must exist in the donor inventory. Codes:
/// parity.switches, parity.kinds, parity.ports, parity.servers,
/// parity.links.
Report equipment_parity(const topo::Topology& a, const topo::Topology& b,
                        bool require_equal_links = true);

}  // namespace flattree::check
