#pragma once
// ResilientController: core::Controller hardened against a live fault
// stream (ISSUE 5 tentpole, paper Section 5's self-recovery argument made
// operational).
//
// The base controller converts between modes with an oracle's view — the
// plan is computed once and applied atomically. This subclass consumes
// FaultEvents in simulated-time order and keeps three guarantees at every
// event boundary:
//
//   1. validity — core::validate_assignment passes after every event and
//      after every partially applied plan. Plans are decomposed into
//      *micro-transactions* (1 step, or the 2 steps of a side/cross pair,
//      which must flip jointly); partial application only ever stops at a
//      micro-transaction boundary, so no observable state has a pair half
//      flipped.
//   2. bounded replanning — when a fault lands mid-reconfiguration and
//      blocks a pending micro-transaction (its converter is stuck, or its
//      target would home a server on a dead switch), the controller
//      replans from the live partial state, at most max_replans times per
//      conversion. Past the budget it aborts: it rolls the applied prefix
//      back to the pre-plan configuration (skipping converters frozen by
//      ConverterStuck — physically immovable), re-homes around the faults,
//      and parks the conversion behind an event-count backoff before
//      retrying.
//   3. link-granularity degradation — a home switch counts as usable only
//      if it is up AND not isolated in the degraded topology (a live
//      switch with every uplink dead is no home). Re-homing prefers the
//      mode's own assignment, falls back per converter to aggregation then
//      edge, freezes stuck converters in place, and keeps side/cross pairs
//      jointly configured; servers with no live home stay stranded rather
//      than being pointed at dead equipment.
//
// Everything is a pure function of the event sequence — no wall clock, no
// randomness — so identical traces produce identical controller histories
// at any thread count (bench_chaos's equivalence checks rely on it).

#include <cstdint>
#include <vector>

#include "check/report.hpp"
#include "core/controller.hpp"
#include "fault/degrade.hpp"
#include "fault/event.hpp"
#include "fault/state.hpp"

namespace flattree::fault {

/// Replanning policy for ResilientController.
struct ResilientOptions {
  /// Replans allowed per conversion before it aborts (rollback + backoff).
  std::uint32_t max_replans = 3;
  /// Events to wait after an aborted conversion before retrying it.
  std::uint32_t backoff_events = 2;
};

/// What one on_event() did.
struct EventOutcome {
  bool changed = false;            ///< the event was an up/down edge
  std::size_t steps_applied = 0;   ///< converter steps executed (recovery/rollback)
  std::uint32_t replans = 0;       ///< replans consumed by this event
  bool rolled_back = false;        ///< in-flight conversion aborted
  bool deferred = false;           ///< retry still parked behind backoff
};

/// A core::Controller that consumes a fault trace in time order and keeps
/// the converter assignment valid after every event, replanning (with a
/// bounded budget, rollback, and backoff) when faults invalidate the
/// in-flight conversion.
class ResilientController : public core::Controller {
 public:
  explicit ResilientController(core::FlatTreeConfig config, ResilientOptions opt = {});
  /// Adopts an already-built plant (generic Clos layouts, core::expand
  /// results) with a fresh, all-up fault state.
  explicit ResilientController(core::FlatTreeNetwork net, ResilientOptions opt = {});

  const FaultState& fault_state() const { return state_; }
  const ResilientOptions& options() const { return opt_; }
  double now() const { return now_; }

  /// Consumes one event (times must be non-decreasing;
  /// std::invalid_argument on regression). Applies the fault, then — if a
  /// conversion is in flight — replans/aborts as needed, otherwise runs
  /// the fault-aware recovery pass (also the roll-forward on repairs).
  EventOutcome on_event(const FaultEvent& e);

  // -- staged conversions (the mid-reconfiguration surface) ----------------
  /// Starts a conversion toward per-pod `target` modes without applying
  /// anything (std::logic_error if one is already in flight). Drive it
  /// with advance(); events may land between any two micro-transactions.
  void begin_conversion(const std::vector<core::Mode>& target);
  void begin_conversion(core::Mode target);

  bool conversion_in_flight() const { return tx_pos_ < txs_.size(); }
  std::size_t pending_micro_txs() const { return txs_.size() - tx_pos_; }

  /// Applies up to `micro_txs` pending micro-transactions; returns how
  /// many were applied. A blocked transaction triggers a replan (bounded)
  /// or an abort, exactly like a mid-flight event.
  std::size_t advance(std::size_t micro_txs);
  void run_to_completion();

  // -- degraded views ------------------------------------------------------
  /// Degraded logical topology + stranded servers under the live configs
  /// and fault state.
  DegradeResult degraded() const;
  std::vector<topo::ServerId> stranded_servers() const;

  /// Full validity battery for the current instant: assignment validity,
  /// no avoidably dead homes, degraded topology invariants (see
  /// fault::check_degraded). Empty report == all guarantees hold.
  check::Report self_check() const;

  /// The fault-avoiding configuration the controller steers toward for
  /// `modes` (exposed for tests; pure function of live state).
  std::vector<core::ConverterConfig> fault_aware_target(
      const std::vector<core::Mode>& modes) const;

 private:
  struct MicroTx {
    std::vector<core::ReconfigStep> steps;  ///< 1, or 2 for a joint pair flip
  };

  static bool paired_cfg(core::ConverterConfig c) {
    return c == core::ConverterConfig::Side || c == core::ConverterConfig::Cross;
  }
  std::vector<core::ReconfigStep> steps_between(
      const std::vector<core::ConverterConfig>& from,
      const std::vector<core::ConverterConfig>& to) const;
  std::vector<MicroTx> decompose(const std::vector<core::ReconfigStep>& steps) const;
  bool tx_blocked(const MicroTx& tx) const;
  std::size_t apply_tx(const MicroTx& tx);
  /// True if any in-flight pending transaction is blocked or any converter
  /// is avoidably homed on dead equipment (the mid-flight replan trigger).
  bool needs_replan() const;
  bool replan(EventOutcome& out);
  void abort_conversion(EventOutcome& out);
  void recover(EventOutcome& out);

  FaultState state_;
  ResilientOptions opt_;
  double now_ = 0.0;

  std::vector<core::Mode> target_modes_;            ///< in-flight/parked goal
  std::vector<core::ConverterConfig> preplan_;      ///< rollback baseline
  std::vector<MicroTx> txs_;
  std::size_t tx_pos_ = 0;
  std::uint32_t replans_used_ = 0;
  std::uint32_t backoff_ = 0;
  bool retry_pending_ = false;
};

}  // namespace flattree::fault
