#pragma once
// Umbrella header for src/fault: deterministic fault injection and the
// online resilient control plane.
//
//   event.hpp                timed fault/repair event vocabulary
//   scenario.hpp             seeded trace generation + text save/replay
//   state.hpp                live down-count bookkeeping (FaultState)
//   degrade.hpp              degraded topologies, cold and incremental
//   resilient_controller.hpp mid-reconfiguration fault handling
//   fault_check.hpp          degraded-validity + conservation validators

#include "fault/degrade.hpp"
#include "fault/event.hpp"
#include "fault/fault_check.hpp"
#include "fault/resilient_controller.hpp"
#include "fault/scenario.hpp"
#include "fault/state.hpp"
