#pragma once
// Timed fault/repair events — the vocabulary of src/fault.
//
// Every fault class the subsystem models is expressed as a small set of
// event kinds applied in simulated-time order:
//
//   LinkDown/LinkUp        a switch pair's cabling fails / is repaired.
//                          Keyed by the normalized *endpoint pair*, not a
//                          LinkId: logical link ids are reshuffled by every
//                          conversion, but switch ids are stable across
//                          fat-tree and any flat-tree configuration, so one
//                          trace replays identically on both (bench_chaos
//                          relies on this). While a pair is down, any live
//                          logical link between the two switches — present
//                          now or created by a later reconfiguration — is
//                          unusable. Flapping links are just bursts of
//                          rapid LinkDown/LinkUp cycles.
//   SwitchDown/SwitchUp    whole-switch failure / repair. Correlated
//                          pod-level power-domain failures are emitted as
//                          one SwitchDown per switch in the pod at the same
//                          instant (and matching SwitchUps at repair);
//                          FaultState's per-switch down *counts* make the
//                          overlap with independent switch failures unwind
//                          exactly.
//   ConverterStuck/ConverterFreed
//                          a converter's actuation fails: it is frozen at
//                          whatever configuration it currently holds until
//                          freed. The data plane through it keeps working —
//                          only reconfiguration is blocked, which is what
//                          stresses the resilient controller's replanning.
//
// Events order by (time, kind, a, b) — a total order, so any two replays
// of the same trace apply events identically even when several coincide.

#include <cstdint>
#include <string>

#include "topo/topology.hpp"

namespace flattree::fault {

using topo::NodeId;

/// Event classes; every Down/Stuck kind has a matching Up/Freed repair.
enum class FaultKind : std::uint8_t {
  LinkDown,
  LinkUp,
  SwitchDown,
  SwitchUp,
  ConverterStuck,
  ConverterFreed,
};

/// Stable lowercase token for the scenario text format ("link_down", ...).
const char* to_string(FaultKind kind);
/// Inverse of to_string; returns false when `token` names no kind.
bool parse_fault_kind(const std::string& token, FaultKind& out);

/// One timed event. `a` is the switch id (Switch*), the lower endpoint of
/// the normalized pair (Link*), or the converter index (Converter*); `b`
/// is the higher endpoint for Link* events and 0 otherwise.
struct FaultEvent {
  double time = 0.0;
  FaultKind kind = FaultKind::LinkDown;
  std::uint32_t a = 0;
  std::uint32_t b = 0;

  /// Total order used by scenarios: (time, kind, a, b).
  friend bool operator<(const FaultEvent& x, const FaultEvent& y) {
    if (x.time != y.time) return x.time < y.time;
    if (x.kind != y.kind) return x.kind < y.kind;
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  }
  friend bool operator==(const FaultEvent& x, const FaultEvent& y) {
    return x.time == y.time && x.kind == y.kind && x.a == y.a && x.b == y.b;
  }
};

/// Normalized (low, high) endpoint key for Link* events.
inline std::uint64_t pair_key(std::uint32_t a, std::uint32_t b) {
  std::uint32_t lo = a < b ? a : b;
  std::uint32_t hi = a < b ? b : a;
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

}  // namespace flattree::fault
