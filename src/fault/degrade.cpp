#include "fault/degrade.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace flattree::fault {

namespace {

obs::Counter c_degrades("fault.degrade.rebuilds");
obs::Counter c_links_removed("fault.graph.links_removed");
obs::Counter c_links_restored("fault.graph.links_restored");

bool link_dead(const FaultState& s, NodeId a, NodeId b) {
  return s.switch_down(a) || s.switch_down(b) || s.pair_down(a, b);
}

}  // namespace

DegradeResult degrade(const topo::Topology& base, const FaultState& state) {
  OBS_SPAN("fault.degrade");
  c_degrades.inc();
  DegradeResult out;
  for (NodeId v = 0; v < base.switch_count(); ++v) {
    const topo::SwitchInfo& info = base.info(v);
    out.topo.add_switch(info.kind, info.pod, info.index, info.ports);
  }
  std::vector<std::uint32_t> degree(base.switch_count(), 0);
  const graph::Graph& g = base.graph();
  for (graph::LinkId l = 0; l < g.link_count(); ++l) {
    if (!g.link_live(l)) continue;
    const graph::Link& link = g.link(l);
    if (link_dead(state, link.a, link.b)) {
      ++out.dropped_links;
      continue;
    }
    out.topo.add_link(link.a, link.b, base.link_info(l).origin, link.capacity);
    ++degree[link.a];
    ++degree[link.b];
  }
  for (ServerId s = 0; s < base.server_count(); ++s) {
    NodeId host = base.host(s);
    out.topo.add_server(host);
    if (state.switch_down(host) || degree[host] == 0) out.stranded.push_back(s);
  }
  return out;
}

FaultedGraph::FaultedGraph(const topo::Topology& base, const FaultState& state)
    : base_(base), g_(base.graph()), reasons_(base.graph().link_count(), 0),
      incident_(base.switch_count()) {
  for (graph::LinkId l = 0; l < g_.link_count(); ++l) {
    const graph::Link& link = g_.link(l);
    incident_[link.a].push_back(l);
    incident_[link.b].push_back(l);
    // Seed the reason counts from whatever is already down: one reason per
    // active condition, exactly as the event path would have accumulated.
    std::uint32_t reasons = 0;
    if (state.switch_down(link.a)) ++reasons;
    if (state.switch_down(link.b)) ++reasons;
    if (state.pair_down(link.a, link.b)) ++reasons;
    reasons_[l] = reasons;
    if (reasons > 0 && g_.link_live(l)) {
      g_.remove_link(l);
      ++removed_;
      c_links_removed.inc();
    }
  }
}

void FaultedGraph::add_reason(graph::LinkId l) {
  if (reasons_[l]++ == 0) {
    g_.remove_link(l);
    ++removed_;
    c_links_removed.inc();
  }
}

void FaultedGraph::drop_reason(graph::LinkId l) {
  if (--reasons_[l] == 0) {
    g_.restore_link(l);
    ++restored_;
    c_links_restored.inc();
  }
}

void FaultedGraph::on_event(const FaultState& state, const FaultEvent& e) {
  (void)state;
  switch (e.kind) {
    case FaultKind::SwitchDown:
      for (graph::LinkId l : incident_[e.a]) add_reason(l);
      break;
    case FaultKind::SwitchUp:
      for (graph::LinkId l : incident_[e.a]) drop_reason(l);
      break;
    case FaultKind::LinkDown:
      for (graph::LinkId l : incident_[e.a])
        if (g_.link(l).other(e.a) == e.b) add_reason(l);
      break;
    case FaultKind::LinkUp:
      for (graph::LinkId l : incident_[e.a])
        if (g_.link(l).other(e.a) == e.b) drop_reason(l);
      break;
    case FaultKind::ConverterStuck:
    case FaultKind::ConverterFreed:
      break;  // control-plane only; the data plane is untouched
  }
}

std::vector<ServerId> FaultedGraph::stranded(const FaultState& state) const {
  std::vector<ServerId> out;
  for (ServerId s = 0; s < base_.server_count(); ++s) {
    NodeId host = base_.host(s);
    if (state.switch_down(host) || g_.degree(host) == 0) out.push_back(s);
  }
  return out;
}

}  // namespace flattree::fault
