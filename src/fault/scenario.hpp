#pragma once
// Seeded fault scenario generation and the replayable text trace format.
//
// A Scenario is a sorted list of FaultEvents over a simulated horizon. The
// generator draws each entity's fault process independently from
// util::Rng::substream(seed, stream), where the stream index encodes
// (fault class, entity id) — a pure function of the seed, so
//
//   * the trace is identical at any thread count and generation order;
//   * enabling or re-parameterizing one fault class never perturbs the
//     subsequence another class draws (class isolation);
//   * per-entity alternating down/up renewal processes (exponential MTBF /
//     MTTR) unwind exactly: every emitted failure carries its matching
//     repair, so a full playback returns the plant to all-up and the
//     fault.* apply/unapply counters conserve.
//
// Scenarios serialize to a line-oriented text format ("# flattree-fault-
// scenario v1"); doubles are printed with 17 significant digits so a
// save -> load round trip reproduces the event list bit for bit, which
// bench_chaos's replay-equivalence check depends on.

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "fault/event.hpp"
#include "topo/topology.hpp"

namespace flattree::fault {

/// One fault class's renewal-process parameters: mean time between
/// failures and mean time to repair, in simulated seconds. A class with
/// mtbf <= 0 is disabled and draws nothing.
struct FaultRate {
  double mtbf = 0.0;
  double mttr = 1.0;
};

/// Generator knobs: one FaultRate per fault class plus flapping control.
struct ScenarioParams {
  double duration = 100.0;   ///< simulated horizon (failures drawn in [0, duration))
  std::uint64_t seed = 1;

  FaultRate link;            ///< per physical switch pair with a base link
  FaultRate switches;        ///< per individual switch
  FaultRate converter;       ///< per converter (stuck-at-config)
  FaultRate pod_power;       ///< per pod (correlated power domain)

  /// Probability that a link outage manifests as a flapping burst: the
  /// outage window is subdivided into up to `flap_max_cycles` rapid
  /// down/up cycles instead of one clean down/up.
  double flap_probability = 0.0;
  std::uint32_t flap_max_cycles = 4;
};

/// A time-sorted fault trace and the horizon it was drawn for.
struct Scenario {
  double duration = 0.0;
  std::uint64_t seed = 0;
  std::vector<FaultEvent> events;  ///< sorted by (time, kind, a, b)
};

/// Generates the scenario for `base` (link pairs are enumerated from its
/// live links; switch pairs with parallel links fault as one unit). Pass
/// the *physical baseline* topology (the Clos build): switch ids are shared
/// by every conversion, so the same trace stresses fat-tree and flat-tree
/// identically. `converter_count`/`pod_count` scope the converter and
/// pod-power classes (0 disables either regardless of rates).
Scenario generate_scenario(const topo::Topology& base, const ScenarioParams& params,
                           std::size_t converter_count, std::uint32_t pod_count);

/// Writes the v1 text format. Doubles round-trip exactly.
void save_scenario(const Scenario& s, std::ostream& out);
/// Parses the v1 text format; throws std::runtime_error on malformed
/// input (bad header, unknown kind, truncated line). Events are re-sorted
/// on load, so a hand-edited trace replays in canonical order.
Scenario load_scenario(std::istream& in);

}  // namespace flattree::fault
