#include "fault/state.hpp"

#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"

namespace flattree::fault {

namespace {

// Apply/unapply conservation mirror: after a fully-unwound trace each
// .down counter equals its .up partner (check_conserved proves the same
// from FaultState's own tallies when observability is off).
obs::Counter c_apply_link("fault.apply.link_down");
obs::Counter c_unapply_link("fault.unapply.link_up");
obs::Counter c_apply_switch("fault.apply.switch_down");
obs::Counter c_unapply_switch("fault.unapply.switch_up");
obs::Counter c_apply_stuck("fault.apply.converter_stuck");
obs::Counter c_unapply_stuck("fault.unapply.converter_freed");

}  // namespace

FaultState::FaultState(std::size_t switch_count, std::size_t converter_count)
    : switch_down_(switch_count, 0), stuck_(converter_count, 0) {}

bool FaultState::pair_down(NodeId a, NodeId b) const {
  auto it = pair_down_.find(pair_key(a, b));
  return it != pair_down_.end() && it->second > 0;
}

bool FaultState::apply(const FaultEvent& e) {
  auto bad = [&](const char* why) {
    throw std::invalid_argument(std::string("FaultState::apply: ") + why + " (" +
                                to_string(e.kind) + " " + std::to_string(e.a) + " " +
                                std::to_string(e.b) + ")");
  };
  time_ = e.time;
  tally_[static_cast<std::size_t>(e.kind)] += 1;
  switch (e.kind) {
    case FaultKind::LinkDown: {
      if (e.a >= switch_down_.size() || e.b >= switch_down_.size())
        bad("endpoint out of range");
      c_apply_link.inc();
      std::uint32_t& count = pair_down_[pair_key(e.a, e.b)];
      if (++count == 1) {
        ++down_pairs_;
        return true;
      }
      return false;
    }
    case FaultKind::LinkUp: {
      if (e.a >= switch_down_.size() || e.b >= switch_down_.size())
        bad("endpoint out of range");
      auto it = pair_down_.find(pair_key(e.a, e.b));
      if (it == pair_down_.end() || it->second == 0) bad("unmatched link repair");
      c_unapply_link.inc();
      if (--it->second == 0) {
        --down_pairs_;
        return true;
      }
      return false;
    }
    case FaultKind::SwitchDown: {
      if (e.a >= switch_down_.size()) bad("switch out of range");
      c_apply_switch.inc();
      if (++switch_down_[e.a] == 1) {
        ++down_switches_;
        return true;
      }
      return false;
    }
    case FaultKind::SwitchUp: {
      if (e.a >= switch_down_.size()) bad("switch out of range");
      if (switch_down_[e.a] == 0) bad("unmatched switch repair");
      c_unapply_switch.inc();
      if (--switch_down_[e.a] == 0) {
        --down_switches_;
        return true;
      }
      return false;
    }
    case FaultKind::ConverterStuck: {
      if (e.a >= stuck_.size()) bad("converter out of range");
      c_apply_stuck.inc();
      if (++stuck_[e.a] == 1) {
        ++stuck_converters_;
        return true;
      }
      return false;
    }
    case FaultKind::ConverterFreed: {
      if (e.a >= stuck_.size()) bad("converter out of range");
      if (stuck_[e.a] == 0) bad("unmatched converter repair");
      c_unapply_stuck.inc();
      if (--stuck_[e.a] == 0) {
        --stuck_converters_;
        return true;
      }
      return false;
    }
  }
  bad("unknown kind");
  return false;
}

core::FailureSet FaultState::failed_switches() const {
  core::FailureSet set;
  for (NodeId v = 0; v < switch_down_.size(); ++v)
    if (switch_down_[v] > 0) set.failed_switches.push_back(v);
  return set;  // ascending by construction => normalized
}

}  // namespace flattree::fault
