#include "fault/fault_check.hpp"

#include <sstream>

#include "check/invariants.hpp"
#include "fault/degrade.hpp"

namespace flattree::fault {

namespace {

using core::Converter;
using core::ConverterConfig;

bool paired_cfg(ConverterConfig c) {
  return c == ConverterConfig::Side || c == ConverterConfig::Cross;
}

NodeId home_of(const Converter& c, ConverterConfig cfg) {
  switch (cfg) {
    case ConverterConfig::Default: return c.edge;
    case ConverterConfig::Local: return c.agg;
    case ConverterConfig::Side:
    case ConverterConfig::Cross: return c.core;
  }
  return c.edge;
}

}  // namespace

check::Report check_degraded(const core::FlatTreeNetwork& net,
                             const std::vector<core::ConverterConfig>& configs,
                             const FaultState& state,
                             const DegradedCheckOptions& options) {
  check::count_run();
  check::Report report;

  report.note_check();
  std::string assignment = core::validate_assignment(net.converters(), configs);
  if (!assignment.empty()) {
    report.add("fault.assignment", assignment);
    return report;  // a pairwise-invalid assignment cannot be materialized
  }

  DegradeResult d = degrade(net.materialize(configs), state);
  std::vector<std::uint32_t> degree(d.topo.switch_count(), 0);
  {
    const graph::Graph& g = d.topo.graph();
    for (graph::LinkId l = 0; l < g.link_count(); ++l) {
      if (!g.link_live(l)) continue;
      ++degree[g.link(l).a];
      ++degree[g.link(l).b];
    }
  }
  auto usable = [&](NodeId v) { return !state.switch_down(v) && degree[v] > 0; };

  // Avoidable dead homes: the link-granularity guarantee. A home on a
  // *down* switch is only acceptable when nothing could have been done —
  // the converter (or its pair partner, for joint side/cross states) is
  // stuck, or no standalone home is usable either.
  if (options.flag_avoidable_homes) {
    const auto& converters = net.converters();
    report.note_check();
    for (std::uint32_t i = 0; i < converters.size(); ++i) {
      const Converter& c = converters[i];
      if (!state.switch_down(home_of(c, configs[i]))) continue;
      if (state.converter_stuck(i)) continue;
      if (paired_cfg(configs[i]) && c.peer != core::kNoPeer &&
          state.converter_stuck(c.peer))
        continue;  // joint state frozen by the partner
      if (!usable(c.agg) && !usable(c.edge)) continue;  // genuinely unrecoverable
      std::ostringstream os;
      os << "converter " << i << " homes server " << c.server << " on down switch "
         << home_of(c, configs[i]) << " while a usable standalone home exists";
      report.add("fault.avoidable_home", os.str());
    }
  }

  check::TopologyCheckOptions topo_opts;
  topo_opts.allow_isolated_switches = true;
  topo_opts.declared_stranded = d.stranded;
  report.merge(check::validate(d.topo, topo_opts));
  return report;
}

check::Report check_conserved(const FaultState& state) {
  check::count_run();
  check::Report report;
  const auto& tally = state.tally();
  struct ClassRow {
    FaultKind down;
    FaultKind up;
    std::size_t active;
    const char* name;
  };
  const ClassRow rows[] = {
      {FaultKind::LinkDown, FaultKind::LinkUp, state.down_pair_count(), "link"},
      {FaultKind::SwitchDown, FaultKind::SwitchUp, state.down_switch_count(), "switch"},
      {FaultKind::ConverterStuck, FaultKind::ConverterFreed,
       state.stuck_converter_count(), "converter"},
  };
  for (const ClassRow& row : rows) {
    std::uint64_t down = tally[static_cast<std::size_t>(row.down)];
    std::uint64_t up = tally[static_cast<std::size_t>(row.up)];
    report.note_check();
    if (up > down) {
      std::ostringstream os;
      os << row.name << ": " << up << " repairs exceed " << down << " failures";
      report.add("fault.conservation", os.str());
      continue;
    }
    // down - up is the sum of live per-entity counts, so it is zero
    // exactly when no entity of the class is down.
    report.note_check();
    if ((down == up) != (row.active == 0)) {
      std::ostringstream os;
      os << row.name << ": tally imbalance " << down - up << " vs " << row.active
         << " active entities";
      report.add("fault.conservation", os.str());
    }
  }
  return report;
}

}  // namespace flattree::fault
