#include "fault/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace flattree::fault {

namespace {

obs::Counter c_generated("fault.scenario.events_generated");
obs::Counter c_loaded("fault.scenario.events_loaded");

// Substream layout: one independent stream per (fault class, entity). The
// class tag lives in the high bits, far above any entity id, so no two
// classes ever share a stream and re-parameterizing one class cannot shift
// another's draws.
constexpr std::uint64_t kLinkClass = 1ULL << 48;
constexpr std::uint64_t kSwitchClass = 2ULL << 48;
constexpr std::uint64_t kConverterClass = 3ULL << 48;
constexpr std::uint64_t kPodClass = 4ULL << 48;

/// Emits one entity's alternating down/up renewal process. `emit(t_down,
/// t_up, rng)` appends the events for one outage window (possibly a
/// flapping burst) and must not draw beyond what it needs in a fixed
/// order.
template <typename Emit>
void renewal_process(util::Rng& rng, const FaultRate& rate, double duration,
                     Emit&& emit) {
  if (rate.mtbf <= 0.0 || rate.mttr <= 0.0) return;
  double t = 0.0;
  for (;;) {
    t += rng.exponential(1.0 / rate.mtbf);
    if (t >= duration) return;
    double outage = rng.exponential(1.0 / rate.mttr);
    emit(t, t + outage, rng);
    t += outage;
  }
}

}  // namespace

Scenario generate_scenario(const topo::Topology& base, const ScenarioParams& params,
                           std::size_t converter_count, std::uint32_t pod_count) {
  Scenario s;
  s.duration = params.duration;
  s.seed = params.seed;

  // -- link class: one process per distinct live switch pair --------------
  std::vector<std::uint64_t> pairs;
  const graph::Graph& g = base.graph();
  for (graph::LinkId l = 0; l < g.link_count(); ++l) {
    if (!g.link_live(l)) continue;
    pairs.push_back(pair_key(g.link(l).a, g.link(l).b));
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  for (std::size_t pi = 0; pi < pairs.size(); ++pi) {
    std::uint32_t lo = static_cast<std::uint32_t>(pairs[pi] >> 32);
    std::uint32_t hi = static_cast<std::uint32_t>(pairs[pi]);
    util::Rng rng = util::Rng::substream(params.seed, kLinkClass + pi);
    renewal_process(rng, params.link, params.duration,
                    [&](double down, double up, util::Rng& r) {
                      bool flap = r.chance(params.flap_probability) &&
                                  params.flap_max_cycles >= 2;
                      std::uint32_t cycles = 1;
                      if (flap)
                        cycles = 2 + static_cast<std::uint32_t>(
                                         r.below(params.flap_max_cycles - 1));
                      // `cycles` equal down segments separated by equal up
                      // gaps inside [down, up]; cycles == 1 is the clean
                      // single outage.
                      double span = up - down;
                      double seg = span / static_cast<double>(2 * cycles - 1);
                      for (std::uint32_t i = 0; i < cycles; ++i) {
                        double d = down + seg * static_cast<double>(2 * i);
                        double u = i + 1 == cycles ? up : d + seg;
                        s.events.push_back({d, FaultKind::LinkDown, lo, hi});
                        s.events.push_back({u, FaultKind::LinkUp, lo, hi});
                      }
                    });
  }

  // -- individual switch class --------------------------------------------
  for (NodeId v = 0; v < base.switch_count(); ++v) {
    util::Rng rng = util::Rng::substream(params.seed, kSwitchClass + v);
    renewal_process(rng, params.switches, params.duration,
                    [&](double down, double up, util::Rng&) {
                      s.events.push_back({down, FaultKind::SwitchDown, v, 0});
                      s.events.push_back({up, FaultKind::SwitchUp, v, 0});
                    });
  }

  // -- converter stuck-at-config class ------------------------------------
  for (std::size_t c = 0; c < converter_count; ++c) {
    util::Rng rng = util::Rng::substream(params.seed, kConverterClass + c);
    renewal_process(rng, params.converter, params.duration,
                    [&](double down, double up, util::Rng&) {
                      std::uint32_t idx = static_cast<std::uint32_t>(c);
                      s.events.push_back({down, FaultKind::ConverterStuck, idx, 0});
                      s.events.push_back({up, FaultKind::ConverterFreed, idx, 0});
                    });
  }

  // -- correlated pod power domains ---------------------------------------
  // One renewal process per pod; each outage downs every switch in the pod
  // at the same instant. FaultState's per-switch down counts keep the
  // overlap with independent switch failures exact.
  if (pod_count > 0 && params.pod_power.mtbf > 0.0) {
    std::vector<std::vector<NodeId>> pod_switches(pod_count);
    for (NodeId v = 0; v < base.switch_count(); ++v) {
      std::int32_t pod = base.info(v).pod;
      if (pod >= 0 && static_cast<std::uint32_t>(pod) < pod_count)
        pod_switches[static_cast<std::uint32_t>(pod)].push_back(v);
    }
    for (std::uint32_t p = 0; p < pod_count; ++p) {
      util::Rng rng = util::Rng::substream(params.seed, kPodClass + p);
      renewal_process(rng, params.pod_power, params.duration,
                      [&](double down, double up, util::Rng&) {
                        for (NodeId v : pod_switches[p]) {
                          s.events.push_back({down, FaultKind::SwitchDown, v, 0});
                          s.events.push_back({up, FaultKind::SwitchUp, v, 0});
                        }
                      });
    }
  }

  std::sort(s.events.begin(), s.events.end());
  c_generated.add(s.events.size());
  return s;
}

namespace {

/// %.17g — enough significant digits to round-trip any double exactly.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

void save_scenario(const Scenario& s, std::ostream& out) {
  out << "# flattree-fault-scenario v1\n";
  out << "duration " << fmt_double(s.duration) << "\n";
  out << "seed " << s.seed << "\n";
  for (const FaultEvent& e : s.events)
    out << "e " << fmt_double(e.time) << " " << to_string(e.kind) << " " << e.a << " "
        << e.b << "\n";
}

Scenario load_scenario(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line != "# flattree-fault-scenario v1")
    throw std::runtime_error("load_scenario: missing v1 header");
  Scenario s;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    auto fail = [&](const char* why) {
      throw std::runtime_error("load_scenario: line " + std::to_string(line_no) + ": " +
                               why);
    };
    // Times come in as whole tokens through strtod so that "inf"/"nan"
    // spellings are seen and rejected uniformly; operator>> on double is
    // implementation-varying for them, and a non-finite time would poison
    // every downstream comparison silently.
    auto finite_token = [&](double& out_v, const char* why) {
      std::string tok;
      if (!(ls >> tok)) fail(why);
      char* tail = nullptr;
      double v = std::strtod(tok.c_str(), &tail);
      if (tail == nullptr || *tail != '\0') fail(why);
      if (!std::isfinite(v)) fail("non-finite time");
      out_v = v;
    };
    if (tag == "duration") {
      finite_token(s.duration, "bad duration");
    } else if (tag == "seed") {
      if (!(ls >> s.seed)) fail("bad seed");
    } else if (tag == "e") {
      FaultEvent e;
      std::string kind;
      finite_token(e.time, "truncated event");
      if (!(ls >> kind >> e.a >> e.b)) fail("truncated event");
      if (!parse_fault_kind(kind, e.kind)) fail("unknown fault kind");
      s.events.push_back(e);
    } else {
      fail("unknown directive");
    }
  }
  // Hand-edited traces may be out of order; resorting is fine, but an
  // exact duplicate (same time, kind, entity) is a double-apply bug in the
  // making — FaultState would double-count the down — so refuse it.
  std::sort(s.events.begin(), s.events.end());
  for (std::size_t i = 1; i < s.events.size(); ++i) {
    if (s.events[i] == s.events[i - 1]) {
      const FaultEvent& e = s.events[i];
      throw std::runtime_error("load_scenario: duplicate event: " + fmt_double(e.time) +
                               " " + to_string(e.kind) + " " + std::to_string(e.a) +
                               " " + std::to_string(e.b));
    }
  }
  c_loaded.add(s.events.size());
  return s;
}

}  // namespace flattree::fault
