#pragma once
// Fault-model validators (check:: battery extensions for src/fault).
//
// check_degraded is the per-instant validity battery the resilient
// controller must satisfy: the converter assignment is pairwise valid, the
// degraded topology passes the full topology battery with stranded
// servers declared, and — when requested — no server is *avoidably*
// homed on dead equipment (its home switch is down while a usable
// standalone alternative exists and nothing freezes the converter).
// Avoidable-home checking is optional because it is an idle-state
// guarantee: mid-conversion, a fault can legitimately leave a stale home
// until the next micro-transactions re-route it.
//
// check_conserved certifies FaultState's apply/unapply bookkeeping: per
// fault class the down tally must never trail the up tally, and the
// tallies are equal exactly when no entity of that class is down — the
// conservation invariant mirrored by the fault.apply.* / fault.unapply.*
// obs counters.

#include <vector>

#include "check/report.hpp"
#include "core/flat_tree.hpp"
#include "fault/state.hpp"

namespace flattree::fault {

/// Knobs for check_degraded.
struct DegradedCheckOptions {
  /// Enforce the no-avoidably-dead-home invariant (idle-state guarantee).
  bool flag_avoidable_homes = true;
};

/// Codes: fault.assignment, fault.avoidable_home, plus the full topo.*
/// battery of check::validate on the degraded topology.
check::Report check_degraded(const core::FlatTreeNetwork& net,
                             const std::vector<core::ConverterConfig>& configs,
                             const FaultState& state,
                             const DegradedCheckOptions& options = {});

/// Codes: fault.conservation.
check::Report check_conserved(const FaultState& state);

}  // namespace flattree::fault
