#include "fault/crash.hpp"

#include <algorithm>
#include <utility>

#include "util/rng.hpp"

namespace flattree::fault {

namespace {

void normalize(std::vector<std::uint64_t>& cuts) {
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
}

}  // namespace

CrashPlan crash_after_each_frame(const std::vector<std::uint64_t>& boundaries) {
  CrashPlan p;
  p.cuts = boundaries;
  normalize(p.cuts);
  return p;
}

CrashPlan crash_every_byte(std::uint64_t begin, std::uint64_t end) {
  CrashPlan p;
  if (begin > end) return p;
  p.cuts.reserve(static_cast<std::size_t>(end - begin + 1));
  for (std::uint64_t b = begin; b <= end; ++b) p.cuts.push_back(b);
  return p;
}

CrashPlan merge_plans(const CrashPlan& a, const CrashPlan& b) {
  CrashPlan p;
  p.cuts.reserve(a.cuts.size() + b.cuts.size());
  p.cuts.insert(p.cuts.end(), a.cuts.begin(), a.cuts.end());
  p.cuts.insert(p.cuts.end(), b.cuts.begin(), b.cuts.end());
  normalize(p.cuts);
  return p;
}

CrashPlan sample_cuts(const CrashPlan& plan, std::size_t max_cuts,
                      std::uint64_t seed) {
  if (plan.cuts.size() <= max_cuts || max_cuts == 0) return plan;
  CrashPlan out;
  if (max_cuts == 1) {
    out.cuts.push_back(plan.cuts.front());
    return out;
  }
  // Endpoints are always in the sample; the middle is chosen by ranking
  // each index with an independent substream draw, so the selection is a
  // pure function of (plan, max_cuts, seed).
  const std::size_t n = plan.cuts.size();
  std::vector<std::pair<std::uint64_t, std::size_t>> ranked;
  ranked.reserve(n - 2);
  for (std::size_t i = 1; i + 1 < n; ++i) {
    util::Rng rng = util::Rng::substream(seed, static_cast<std::uint64_t>(i));
    ranked.emplace_back(rng(), i);
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<std::size_t> keep;
  keep.reserve(max_cuts);
  keep.push_back(0);
  for (std::size_t j = 0; j < max_cuts - 2 && j < ranked.size(); ++j)
    keep.push_back(ranked[j].second);
  keep.push_back(n - 1);
  std::sort(keep.begin(), keep.end());
  out.cuts.reserve(keep.size());
  for (std::size_t i : keep) out.cuts.push_back(plan.cuts[i]);
  return out;
}

}  // namespace flattree::fault
