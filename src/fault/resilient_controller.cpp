#include "fault/resilient_controller.hpp"

#include <stdexcept>
#include <utility>

#include "fault/fault_check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace flattree::fault {

namespace {

using core::Converter;
using core::ConverterConfig;
using core::Mode;
using core::ReconfigStep;

obs::Counter c_events("fault.ctl.events");
obs::Counter c_steps("fault.ctl.steps_applied");
obs::Counter c_replans("fault.ctl.replans");
obs::Counter c_rollbacks("fault.ctl.rollbacks");
obs::Counter c_recoveries("fault.ctl.recoveries");
obs::Counter c_deferrals("fault.ctl.deferrals");
obs::Counter c_conversions("fault.ctl.conversions_started");
obs::Counter c_completed("fault.ctl.conversions_completed");

NodeId home_of(const Converter& c, ConverterConfig cfg) {
  switch (cfg) {
    case ConverterConfig::Default: return c.edge;
    case ConverterConfig::Local: return c.agg;
    case ConverterConfig::Side:
    case ConverterConfig::Cross: return c.core;
  }
  return c.edge;
}

}  // namespace

ResilientController::ResilientController(core::FlatTreeConfig config,
                                         ResilientOptions opt)
    : ResilientController(core::FlatTreeNetwork(std::move(config)), opt) {}

ResilientController::ResilientController(core::FlatTreeNetwork net, ResilientOptions opt)
    : core::Controller(std::move(net)),
      state_(net_.params().total_switches(), net_.converters().size()),
      opt_(opt) {}

// -- fault-aware configuration synthesis ------------------------------------

std::vector<ConverterConfig> ResilientController::fault_aware_target(
    const std::vector<Mode>& modes) const {
  const auto& converters = net_.converters();
  std::vector<ConverterConfig> desired = net_.assign_configs(modes);
  std::vector<ConverterConfig> out = configs_;

  // Two refinement passes: home usability depends on the degraded topology,
  // which depends on the chosen configs. Pass 0 judges usability under the
  // live configuration, pass 1 under pass 0's choice — enough to catch a
  // home that the first re-homing itself isolated, while staying a
  // deterministic, bounded amount of work. The passes can disagree when a
  // re-homing restores the very connectivity that justified it (a link-
  // isolated edge regains a transit link under the rescued configuration,
  // so pass 1 would move the servers straight back); the candidate that
  // strands fewer servers wins, ties to the later pass.
  std::vector<std::vector<ConverterConfig>> candidates;
  for (int pass = 0; pass < 2; ++pass) {
    DegradeResult d = degrade(net_.materialize(out), state_);
    std::vector<std::uint32_t> degree(d.topo.switch_count(), 0);
    for (const graph::Link& link : d.topo.graph().links()) {
      ++degree[link.a];
      ++degree[link.b];
    }
    auto usable = [&](NodeId v) { return !state_.switch_down(v) && degree[v] > 0; };
    // Best standalone configuration: the preferred one if its home is
    // usable, else aggregation, else edge, else keep the current config
    // (every home is dead — the server is stranded whatever we pick, so
    // avoid pointless churn).
    auto standalone_safe = [&](std::uint32_t idx, ConverterConfig pref) {
      const Converter& c = converters[idx];
      if (!paired_cfg(pref) && usable(home_of(c, pref))) return pref;
      if (usable(c.agg)) return ConverterConfig::Local;
      if (usable(c.edge)) return ConverterConfig::Default;
      return paired_cfg(configs_[idx]) ? ConverterConfig::Local : configs_[idx];
    };

    std::vector<ConverterConfig> next(converters.size());
    std::vector<char> done(converters.size(), 0);
    for (std::uint32_t i = 0; i < converters.size(); ++i) {
      if (done[i]) continue;
      const Converter& c = converters[i];
      if (c.peer == core::kNoPeer) {
        done[i] = 1;
        next[i] = state_.converter_stuck(i) ? configs_[i] : standalone_safe(i, desired[i]);
        continue;
      }
      std::uint32_t j = c.peer;
      const Converter& p = converters[j];
      done[i] = done[j] = 1;
      bool i_stuck = state_.converter_stuck(i);
      bool j_stuck = state_.converter_stuck(j);
      if (i_stuck || j_stuck) {
        // Frozen members keep their configuration. A frozen side/cross
        // state freezes the partner too (the pair is one joint physical
        // configuration); a frozen standalone leaves the partner free to
        // pick any safe standalone.
        next[i] = configs_[i];
        next[j] = configs_[j];
        if (!i_stuck && !paired_cfg(configs_[j]))
          next[i] = standalone_safe(i, paired_cfg(desired[i]) ? ConverterConfig::Local
                                                              : desired[i]);
        if (!j_stuck && !paired_cfg(configs_[i]))
          next[j] = standalone_safe(j, paired_cfg(desired[j]) ? ConverterConfig::Local
                                                              : desired[j]);
      } else if (paired_cfg(desired[i]) && usable(c.core) && usable(p.core)) {
        next[i] = desired[i];
        next[j] = desired[j];
      } else {
        next[i] = standalone_safe(i, paired_cfg(desired[i]) ? ConverterConfig::Local
                                                            : desired[i]);
        next[j] = standalone_safe(j, paired_cfg(desired[j]) ? ConverterConfig::Local
                                                            : desired[j]);
      }
    }
    out = std::move(next);
    candidates.push_back(out);
  }
  std::size_t s0 = degrade(net_.materialize(candidates[0]), state_).stranded.size();
  std::size_t s1 = degrade(net_.materialize(candidates[1]), state_).stranded.size();
  return s0 < s1 ? std::move(candidates[0]) : std::move(candidates[1]);
}

// -- plan decomposition ------------------------------------------------------

std::vector<ReconfigStep> ResilientController::steps_between(
    const std::vector<ConverterConfig>& from,
    const std::vector<ConverterConfig>& to) const {
  std::vector<ReconfigStep> steps;
  for (std::uint32_t i = 0; i < from.size(); ++i)
    if (from[i] != to[i]) steps.push_back({i, from[i], to[i]});
  return steps;
}

std::vector<ResilientController::MicroTx> ResilientController::decompose(
    const std::vector<ReconfigStep>& steps) const {
  const auto& converters = net_.converters();
  std::vector<std::uint32_t> step_of(converters.size(), core::kNoPeer);
  for (std::uint32_t s = 0; s < steps.size(); ++s) step_of[steps[s].converter] = s;

  std::vector<MicroTx> txs;
  std::vector<char> used(steps.size(), 0);
  for (std::uint32_t s = 0; s < steps.size(); ++s) {
    if (used[s]) continue;
    used[s] = 1;
    const ReconfigStep& step = steps[s];
    MicroTx tx;
    tx.steps.push_back(step);
    std::uint32_t peer = converters[step.converter].peer;
    // A step that enters or leaves a side/cross state must land together
    // with its partner's — validate_assignment holds at every transaction
    // boundary only if joint states flip jointly.
    if (peer != core::kNoPeer && step_of[peer] != core::kNoPeer && !used[step_of[peer]]) {
      const ReconfigStep& ps = steps[step_of[peer]];
      if (paired_cfg(step.from) || paired_cfg(step.to) || paired_cfg(ps.from) ||
          paired_cfg(ps.to)) {
        used[step_of[peer]] = 1;
        tx.steps.push_back(ps);
      }
    }
    txs.push_back(std::move(tx));
  }
  return txs;
}

bool ResilientController::tx_blocked(const MicroTx& tx) const {
  for (const ReconfigStep& step : tx.steps) {
    if (state_.converter_stuck(step.converter)) return true;
    if (state_.switch_down(home_of(net_.converters()[step.converter], step.to)))
      return true;
  }
  return false;
}

std::size_t ResilientController::apply_tx(const MicroTx& tx) {
  for (const ReconfigStep& step : tx.steps) configs_[step.converter] = step.to;
  c_steps.add(tx.steps.size());
  return tx.steps.size();
}

// -- staged conversions ------------------------------------------------------

void ResilientController::begin_conversion(const std::vector<Mode>& target) {
  if (conversion_in_flight())
    throw std::logic_error("ResilientController: conversion already in flight");
  if (target.size() != net_.params().pods())
    throw std::invalid_argument("ResilientController: one mode per pod required");
  OBS_SPAN("fault.ctl.begin_conversion");
  c_conversions.inc();
  target_modes_ = target;
  preplan_ = configs_;
  replans_used_ = 0;
  retry_pending_ = false;
  backoff_ = 0;
  txs_ = decompose(steps_between(configs_, fault_aware_target(target)));
  tx_pos_ = 0;
  if (txs_.empty()) pod_modes_ = target;  // nothing to move
}

void ResilientController::begin_conversion(Mode target) {
  begin_conversion(std::vector<Mode>(net_.params().pods(), target));
}

std::size_t ResilientController::advance(std::size_t micro_txs) {
  std::size_t applied = 0;
  while (applied < micro_txs && conversion_in_flight()) {
    const MicroTx& tx = txs_[tx_pos_];
    if (tx_blocked(tx)) {
      EventOutcome scratch;
      if (!replan(scratch)) {
        abort_conversion(scratch);
        break;
      }
      continue;  // fresh plan; retry from its first transaction
    }
    apply_tx(tx);
    ++tx_pos_;
    ++applied;
  }
  if (!txs_.empty() && tx_pos_ == txs_.size()) {
    pod_modes_ = target_modes_;
    txs_.clear();
    tx_pos_ = 0;
    c_completed.inc();
  }
  return applied;
}

void ResilientController::run_to_completion() {
  while (conversion_in_flight())
    if (advance(pending_micro_txs()) == 0) break;  // aborted
}

// -- event consumption -------------------------------------------------------

bool ResilientController::needs_replan() const {
  for (std::size_t t = tx_pos_; t < txs_.size(); ++t)
    if (tx_blocked(txs_[t])) return true;
  // Urgent strand: a converter already homes its server on a down switch,
  // could move (not stuck, pair not frozen), and has somewhere to go. The
  // replan folds the re-homing into the remaining plan.
  const auto& converters = net_.converters();
  for (std::uint32_t i = 0; i < converters.size(); ++i) {
    const Converter& c = converters[i];
    if (!state_.switch_down(home_of(c, configs_[i]))) continue;
    if (state_.converter_stuck(i)) continue;
    if (paired_cfg(configs_[i]) && c.peer != core::kNoPeer &&
        state_.converter_stuck(c.peer))
      continue;
    if (!state_.switch_down(c.agg) || !state_.switch_down(c.edge)) return true;
  }
  return false;
}

bool ResilientController::replan(EventOutcome& out) {
  if (replans_used_ >= opt_.max_replans) return false;
  ++replans_used_;
  ++out.replans;
  c_replans.inc();
  txs_ = decompose(steps_between(configs_, fault_aware_target(target_modes_)));
  tx_pos_ = 0;
  return true;
}

void ResilientController::abort_conversion(EventOutcome& out) {
  OBS_SPAN("fault.ctl.abort");
  c_rollbacks.inc();
  out.rolled_back = true;
  // Roll the applied prefix back to the pre-plan configuration. Stuck
  // converters are physically immovable, so transactions touching them are
  // skipped — decompose keeps pairs atomic, so skipping preserves
  // assignment validity; the recovery pass below re-homes around whatever
  // could not be undone.
  for (const MicroTx& tx : decompose(steps_between(configs_, preplan_))) {
    bool frozen = false;
    for (const ReconfigStep& step : tx.steps)
      frozen = frozen || state_.converter_stuck(step.converter);
    if (!frozen) out.steps_applied += apply_tx(tx);
  }
  txs_.clear();
  tx_pos_ = 0;
  retry_pending_ = true;
  backoff_ = opt_.backoff_events;
  recover(out);
}

void ResilientController::recover(EventOutcome& out) {
  OBS_SPAN("fault.ctl.recover");
  c_recoveries.inc();
  // Idle-state fault-aware re-homing (also the roll-forward after
  // repairs): steer toward the fault-avoiding realization of the current
  // operating modes. fault_aware_target never moves stuck converters and
  // never breaks joint pair states, so every transaction applies.
  for (const MicroTx& tx : decompose(steps_between(configs_, fault_aware_target(pod_modes_))))
    out.steps_applied += apply_tx(tx);
}

EventOutcome ResilientController::on_event(const FaultEvent& e) {
  if (e.time < now_)
    throw std::invalid_argument("ResilientController: events must be time-ordered");
  OBS_SPAN("fault.ctl.on_event");
  c_events.inc();
  now_ = e.time;
  EventOutcome out;
  out.changed = state_.apply(e);

  if (conversion_in_flight()) {
    if (out.changed && needs_replan() && !replan(out)) abort_conversion(out);
    return out;
  }

  if (retry_pending_) {
    if (backoff_ > 0) {
      --backoff_;
      out.deferred = true;
      c_deferrals.inc();
    }
    if (backoff_ == 0) {
      retry_pending_ = false;
      std::vector<Mode> goal = std::move(target_modes_);
      begin_conversion(goal);
      return out;
    }
  }

  if (out.changed) recover(out);
  return out;
}

// -- degraded views ----------------------------------------------------------

DegradeResult ResilientController::degraded() const {
  return degrade(net_.materialize(configs_), state_);
}

std::vector<topo::ServerId> ResilientController::stranded_servers() const {
  return degraded().stranded;
}

check::Report ResilientController::self_check() const {
  DegradedCheckOptions opts;
  // Avoidably dead homes are an idle-state guarantee: mid-conversion (or
  // while a retry is parked behind backoff) the re-homing lives in the
  // pending transactions, not the live configs.
  opts.flag_avoidable_homes = !conversion_in_flight() && !retry_pending_;
  return check_degraded(net_, configs_, state_, opts);
}

}  // namespace flattree::fault
