#include "fault/event.hpp"

namespace flattree::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::LinkDown: return "link_down";
    case FaultKind::LinkUp: return "link_up";
    case FaultKind::SwitchDown: return "switch_down";
    case FaultKind::SwitchUp: return "switch_up";
    case FaultKind::ConverterStuck: return "converter_stuck";
    case FaultKind::ConverterFreed: return "converter_freed";
  }
  return "unknown";
}

bool parse_fault_kind(const std::string& token, FaultKind& out) {
  for (FaultKind k : {FaultKind::LinkDown, FaultKind::LinkUp, FaultKind::SwitchDown,
                      FaultKind::SwitchUp, FaultKind::ConverterStuck,
                      FaultKind::ConverterFreed}) {
    if (token == to_string(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

}  // namespace flattree::fault
