#pragma once
// Degraded topology under a FaultState — cold and incremental forms.
//
// degrade() is the one-shot form: a fresh Topology with every link that
// touches a down switch or rides a down pair left out (failed switches
// stay as isolated nodes, so ids are stable, matching core::recovery's
// convention). Use it wherever a tombstone-free graph is required — the
// MCF solver rejects edited graphs outright.
//
// FaultedGraph is the incremental form: it owns a graph::Graph mirroring a
// fixed logical topology and reacts to each fault event by tombstoning /
// restoring exactly the affected link slots through the graph's edit
// journal, so inc::DynamicApsp::retarget sees a handful-of-links delta
// instead of a rebuild. Per-link "down reason" counts (endpoint a down,
// endpoint b down, pair down — each counted independently) make
// overlapping failures unwind exactly: a link is live iff its reason count
// is zero, and a fully unwound trace restores every slot.
//
// Strandedness at link granularity (the ISSUE's "a live switch with a dead
// uplink still counts as a home" fix): a server is stranded when its host
// switch is down OR the host has degree zero in the degraded graph — both
// forms report the same set for the same state.

#include <cstdint>
#include <vector>

#include "fault/state.hpp"
#include "graph/graph.hpp"
#include "topo/topology.hpp"

namespace flattree::fault {

using topo::ServerId;

/// A degraded topology plus the bookkeeping of what the faults removed.
struct DegradeResult {
  topo::Topology topo;                 ///< tombstone-free degraded copy
  std::vector<ServerId> stranded;      ///< host down or isolated, ascending
  std::size_t dropped_links = 0;       ///< links left out of `topo`
};

/// One-shot degraded rebuild of `base` under `state`.
DegradeResult degrade(const topo::Topology& base, const FaultState& state);

/// Incrementally maintained degraded switch graph over a fixed topology.
class FaultedGraph {
 public:
  /// Seeds from `base` (all links live) and `state` (whatever is already
  /// down is applied immediately, so a FaultedGraph can be built
  /// mid-trace).
  FaultedGraph(const topo::Topology& base, const FaultState& state);

  /// The live degraded graph (tombstoned slots = dead links). Link slot
  /// ids match `base`'s link ids.
  const graph::Graph& graph() const { return g_; }

  /// Reacts to one *edge-triggered* event: call right after
  /// FaultState::apply returned true for `e` on the same state object.
  /// Non-edge events (a second down on an already-down entity) must be
  /// skipped by the caller — the state's counts already absorb them.
  /// Converter events are no-ops here (they gate reconfiguration, not the
  /// data plane).
  void on_event(const FaultState& state, const FaultEvent& e);

  /// Stranded servers of `base` under the current graph: host down or
  /// isolated. Ascending.
  std::vector<ServerId> stranded(const FaultState& state) const;

  /// Total slots tombstoned / restored so far (conservation mirror of the
  /// fault.graph.links_removed / links_restored counters).
  std::uint64_t links_removed() const { return removed_; }
  std::uint64_t links_restored() const { return restored_; }

 private:
  void add_reason(graph::LinkId l);
  void drop_reason(graph::LinkId l);

  const topo::Topology& base_;
  graph::Graph g_;
  std::vector<std::uint32_t> reasons_;  ///< active down-reasons per link slot
  std::vector<std::vector<graph::LinkId>> incident_;  ///< per switch
  std::uint64_t removed_ = 0;
  std::uint64_t restored_ = 0;
};

}  // namespace flattree::fault
