#pragma once
// Deterministic crash-injection plans (ISSUE 10 tentpole). A CrashPlan is
// a sorted list of *cut points* — byte lengths at which a durable write
// stream (the svc journal) is severed, simulating a crash that left only
// that prefix on disk. The crash-matrix tests drive one recovery per cut:
// truncate the journal to `cut` bytes, recover from snapshot + journal,
// resume the remaining request stream, and byte-compare every response
// against the uninterrupted run.
//
// The two generators mirror the failure modes that matter for a framed
// log: crash_after_each_frame() cuts exactly at frame boundaries (clean
// tears — the recovered journal needs no truncation), and
// crash_every_byte() cuts at every byte of a range (torn tails — every
// possible partial final frame). sample_cuts() deterministically
// subsamples a large plan via util::Rng::substream so sanitizer builds
// can run a representative matrix at fixed cost.

#include <cstdint>
#include <vector>

namespace flattree::fault {

/// A deterministic set of crash cut points, as byte lengths of the
/// surviving prefix. Always sorted ascending with no duplicates.
struct CrashPlan {
  std::vector<std::uint64_t> cuts;
};

/// Cuts after each frame boundary: `boundaries` are byte offsets one past
/// each written frame (duplicates and unsorted input are normalized).
CrashPlan crash_after_each_frame(const std::vector<std::uint64_t>& boundaries);

/// Cuts at every byte length in [begin, end] inclusive — the exhaustive
/// torn-tail sweep over one frame's bytes.
CrashPlan crash_every_byte(std::uint64_t begin, std::uint64_t end);

/// Sorted-unique union of two plans.
CrashPlan merge_plans(const CrashPlan& a, const CrashPlan& b);

/// Deterministically subsamples `plan` down to at most `max_cuts` cuts
/// using util::Rng::substream(seed, i) draws — the same cuts at any
/// thread count or call order. The first and last cut are always kept.
CrashPlan sample_cuts(const CrashPlan& plan, std::size_t max_cuts,
                      std::uint64_t seed);

}  // namespace flattree::fault
