#pragma once
// FaultState: the live what-is-down bookkeeping for a fault trace.
//
// Failures overlap — a pod power outage downs a switch that an independent
// switch failure also downed; a flapping burst re-downs a pair already
// down. FaultState therefore tracks *down counts* per entity, not
// booleans: an entity is down while its count is positive, and only the
// 0 -> 1 and 1 -> 0 transitions are edge-triggered (those are what
// degrade() and FaultedGraph react to). Applying a trace and its matching
// repairs in any interleaving returns every count to zero — the
// conservation invariant check_conserved() certifies and the
// fault.apply.* / fault.unapply.* obs counters mirror.
//
// apply() is O(1) per event (amortized hash-map on link pairs) and keeps
// per-kind tallies of every event consumed, so conservation is checkable
// without observability enabled.

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/recovery.hpp"
#include "fault/event.hpp"

namespace flattree::fault {

/// Cumulative down-state of the plant: per-entity down *counts* so
/// overlapping failures (link + its switch + pod power) only revive an
/// entity on the last repair. apply() reports edge-triggered transitions.
class FaultState {
 public:
  FaultState(std::size_t switch_count, std::size_t converter_count);

  /// Consumes one event. Out-of-range ids and repairs of entities that are
  /// already fully up throw std::invalid_argument (an unmatched repair
  /// means the trace is corrupt — silently clamping would break
  /// conservation). Returns true when the entity's up/down (or stuck)
  /// state actually changed — the edge triggers callers react to.
  bool apply(const FaultEvent& e);

  // -- live state ----------------------------------------------------------
  bool switch_down(NodeId v) const { return switch_down_[v] > 0; }
  bool pair_down(NodeId a, NodeId b) const;
  bool converter_stuck(std::uint32_t idx) const { return stuck_[idx] > 0; }
  double time() const { return time_; }  ///< time of the last applied event

  std::size_t down_switch_count() const { return down_switches_; }
  std::size_t down_pair_count() const { return down_pairs_; }
  std::size_t stuck_converter_count() const { return stuck_converters_; }
  /// True when nothing is down or stuck (the fully-unwound state).
  bool clean() const {
    return down_switches_ == 0 && down_pairs_ == 0 && stuck_converters_ == 0;
  }

  /// The currently-down switches as a normalized core::FailureSet (for
  /// plan_recovery / apply_failures interop).
  core::FailureSet failed_switches() const;

  // -- conservation tallies ------------------------------------------------
  /// Events consumed per kind (indexed by FaultKind). check_conserved()
  /// proves down tallies equal up tallies whenever clean().
  const std::array<std::uint64_t, 6>& tally() const { return tally_; }

  std::size_t switch_count() const { return switch_down_.size(); }
  std::size_t converter_count() const { return stuck_.size(); }

 private:
  std::vector<std::uint32_t> switch_down_;  ///< down count per switch
  std::vector<std::uint32_t> stuck_;        ///< stuck count per converter
  std::unordered_map<std::uint64_t, std::uint32_t> pair_down_;  ///< key -> count
  std::size_t down_switches_ = 0;
  std::size_t down_pairs_ = 0;
  std::size_t stuck_converters_ = 0;
  double time_ = 0.0;
  std::array<std::uint64_t, 6> tally_{};
};

}  // namespace flattree::fault
