#pragma once
// Pod-core wiring patterns (paper Section 2.3, Figure 4) and the inter-pod
// side-connector shifting pattern (Section 2.5).
//
// Pod-core: in flat-tree each edge switch E_j corresponds to h/r core
// connectors — m from its blade B (6-port) converters, n from blade A
// (4-port), and h/r - m - n direct aggregation uplinks — which connect to
// the fixed group of h/r core switches C_{j*h/r} .. C_{j*h/r + h/r - 1}.
// Within the group the connectors are laid out blade B first, then blade A,
// then aggregation, rotated per pod:
//   pattern 1: offset(p) = p * m        (packs blade B contiguously pod by pod)
//   pattern 2: offset(p) = p * (m + 1)  (advances one extra core per pod)
// Both wrap around within the group. Pattern 1 maximizes use of side links
// between adjacent pods but repeats when h/r is a multiple of m; pattern 2
// restores diversity in that case (the paper uses pattern 2 when 4 | k).
//
// Inter-pod: converter <i,j> on the LEFT blade B of pod p+1 connects to
// converter <i, (w-1-j+i) mod w> on the RIGHT blade B of pod p, where
// w = floor(d/2) is the per-side column count — same row, column shifted i
// slots from the mirrored column. Row parity picks the joint configuration:
// even rows pair as `side`, odd rows as `cross`, so adjacent pods get both
// peer-wise and edge-aggregation connections.

#include <cstdint>
#include <vector>

namespace flattree::core {

enum class WiringPattern : std::uint8_t {
  Pattern1,
  Pattern2,
  /// Paper's Section 3.2 rule: Pattern2 when k is a multiple of 4,
  /// Pattern1 otherwise.
  Auto,
};

/// How the pod chain closes for side connectors (a DESIGN.md substitution:
/// the paper only specifies adjacency).
enum class PodChain : std::uint8_t {
  Ring,    ///< pod P-1's right blade pairs with pod 0's left blade (default)
  Linear,  ///< end blades stay unpaired; their converters fall back to
           ///< standalone configurations
};

const char* to_string(WiringPattern pattern);
const char* to_string(PodChain chain);

/// Resolves Auto for a given k (paper rule: Pattern2 when 4 | k, else
/// Pattern1) — except when the preferred pattern is *degenerate* for the
/// given (m, group_size): a rotation step that is 0 mod h/r parks every
/// pod's blade B connectors on the same cores, which in global-random mode
/// leaves those cores with servers but no links. Auto then falls back to
/// the other pattern. Explicitly requested degenerate patterns are honored
/// (materialize() will reject the disconnected result).
WiringPattern resolve_pattern(WiringPattern pattern, std::uint32_t k, std::uint32_t m,
                              std::uint32_t group_size);

/// True when the pattern's per-pod rotation step is 0 mod group_size.
bool pattern_degenerate(WiringPattern pattern, std::uint32_t m, std::uint32_t group_size);

/// True when the pattern distributes blade B connectors (and hence
/// relocated servers — paper Property 1) exactly uniformly across the
/// cores of each group: the rotation step's gcd with the group size must
/// divide the blade B block length m. Pattern 1 (step m) always is;
/// pattern 2 (step m+1) is uniform iff gcd(m+1, group) == 1.
bool pattern_server_uniform(WiringPattern pattern, std::uint32_t m,
                            std::uint32_t group_size);

/// Stronger: every connector family (blade B, blade A, aggregation) lands
/// uniformly, i.e. the gcd also divides n (paper Property 2 exactly).
bool pattern_fully_uniform(WiringPattern pattern, std::uint32_t m, std::uint32_t n,
                           std::uint32_t group_size);

/// What a pod-core connector slot is wired through.
enum class CoreConnectorKind : std::uint8_t { BladeB, BladeA, Aggregation };

/// Core-switch assignment for one (pod, edge) connector family.
struct CoreAssignment {
  /// core_of_blade_b[i] = core index (global) for blade B row i, i in [0,m).
  std::vector<std::uint32_t> core_of_blade_b;
  /// core_of_blade_a[i] = core index for blade A row i, i in [0,n).
  std::vector<std::uint32_t> core_of_blade_a;
  /// core_of_agg[t] = core index for the t-th direct aggregation uplink.
  std::vector<std::uint32_t> core_of_agg;
};

/// Computes the assignment for pod `p`, edge `j`. `group_size` = h/r.
/// Requires m + n <= group_size. Cores are numbered j*group_size + slot.
CoreAssignment assign_cores(WiringPattern pattern, std::uint32_t p, std::uint32_t j,
                            std::uint32_t m, std::uint32_t n, std::uint32_t group_size);

/// Rotation offset within the core group for pod p (exposed for tests).
std::uint32_t pattern_offset(WiringPattern pattern, std::uint32_t p, std::uint32_t m,
                             std::uint32_t group_size);

/// Inter-pod shift: the RIGHT-blade column (0-based, within the blade) of
/// pod p paired with LEFT-blade column `j` (row `i`) of pod p+1.
/// `w` = per-side column count (floor(d/2)); requires j < w.
std::uint32_t side_peer_column(std::uint32_t i, std::uint32_t j, std::uint32_t w);

}  // namespace flattree::core
