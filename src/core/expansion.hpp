#pragma once
// Network expansion planning (paper Section 5: convertibility enables
// "automatic up/down-scale [of] the network at busy/idle time").
//
// Flat-tree grows by whole pods: a new pod brings its converters and
// cabling pre-packaged, plugs its core connectors into the spare core
// ports, and splices into the side-connector chain. This module checks
// feasibility against core-port headroom (fat-tree layouts have none — a
// generic ClosParams with core_ports > pods is required) and itemizes the
// physical work, then produces the expanded FlatTreeNetwork.

#include <cstdint>

#include "core/flat_tree.hpp"

namespace flattree::core {

struct ExpansionPlan {
  topo::ClosParams before;
  topo::ClosParams after;
  std::uint32_t pods_added = 0;
  std::size_t new_switches = 0;       ///< edge + aggregation switches shipped
  std::size_t new_servers = 0;
  std::size_t new_core_links = 0;     ///< cables from the new pods to cores
  std::size_t side_bundles_spliced = 0;  ///< multi-link side connectors touched
};

/// Plans adding `extra_pods` pods to `current`. Throws
/// std::invalid_argument when the core switches lack spare ports
/// (core_ports < pods + extra_pods) or extra_pods == 0.
ExpansionPlan plan_expansion(const topo::ClosParams& current, std::uint32_t extra_pods,
                             PodChain chain = PodChain::Ring);

/// Builds the expanded physical plant from a plan, preserving m, n and
/// wiring choices of `base`.
FlatTreeNetwork expand(const FlatTreeNetwork& base, const ExpansionPlan& plan);

}  // namespace flattree::core
