#include "core/wiring.hpp"

#include <stdexcept>

namespace flattree::core {

const char* to_string(WiringPattern pattern) {
  switch (pattern) {
    case WiringPattern::Pattern1: return "pattern1";
    case WiringPattern::Pattern2: return "pattern2";
    case WiringPattern::Auto: return "auto";
  }
  return "?";
}

const char* to_string(PodChain chain) {
  switch (chain) {
    case PodChain::Ring: return "ring";
    case PodChain::Linear: return "linear";
  }
  return "?";
}

bool pattern_degenerate(WiringPattern pattern, std::uint32_t m, std::uint32_t group_size) {
  if (pattern == WiringPattern::Auto)
    throw std::invalid_argument("pattern_degenerate: resolve Auto first");
  std::uint32_t step = pattern == WiringPattern::Pattern1 ? m : m + 1;
  return step % group_size == 0;
}

namespace {
std::uint32_t rotation_step(WiringPattern pattern, std::uint32_t m) {
  return pattern == WiringPattern::Pattern1 ? m : m + 1;
}

std::uint32_t gcd32(std::uint32_t a, std::uint32_t b) {
  while (b != 0) {
    std::uint32_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}
}  // namespace

bool pattern_server_uniform(WiringPattern pattern, std::uint32_t m,
                            std::uint32_t group_size) {
  if (pattern == WiringPattern::Auto)
    throw std::invalid_argument("pattern_server_uniform: resolve Auto first");
  if (m == 0) return true;  // no blade B connectors at all
  std::uint32_t c = gcd32(rotation_step(pattern, m) % group_size, group_size);
  if (c == 0) c = group_size;  // step == 0 mod group (degenerate)
  return m % c == 0;
}

bool pattern_fully_uniform(WiringPattern pattern, std::uint32_t m, std::uint32_t n,
                           std::uint32_t group_size) {
  if (pattern == WiringPattern::Auto)
    throw std::invalid_argument("pattern_fully_uniform: resolve Auto first");
  std::uint32_t c = gcd32(rotation_step(pattern, m) % group_size, group_size);
  if (c == 0) c = group_size;
  return m % c == 0 && n % c == 0;
}

WiringPattern resolve_pattern(WiringPattern pattern, std::uint32_t k, std::uint32_t m,
                              std::uint32_t group_size) {
  if (pattern != WiringPattern::Auto) return pattern;
  WiringPattern preferred =
      k % 4 == 0 ? WiringPattern::Pattern2 : WiringPattern::Pattern1;
  WiringPattern other =
      preferred == WiringPattern::Pattern2 ? WiringPattern::Pattern1 : WiringPattern::Pattern2;
  // The paper asserts Property 1 (uniform server spread over cores) for
  // its patterns; honor the paper's preference only when the preferred
  // pattern actually delivers it for this (m, h/r), else fall back.
  // Pattern 1 is always server-uniform and non-degenerate for m > 0, so a
  // sound choice always exists.
  if (m == 0) return preferred;
  if (!pattern_server_uniform(preferred, m, group_size) ||
      pattern_degenerate(preferred, m, group_size)) {
    if (pattern_server_uniform(other, m, group_size) &&
        !pattern_degenerate(other, m, group_size))
      return other;
  }
  return preferred;
}

std::uint32_t pattern_offset(WiringPattern pattern, std::uint32_t p, std::uint32_t m,
                             std::uint32_t group_size) {
  if (pattern == WiringPattern::Auto)
    throw std::invalid_argument("pattern_offset: resolve Auto first");
  std::uint64_t step = pattern == WiringPattern::Pattern1 ? m : m + 1;
  return static_cast<std::uint32_t>((static_cast<std::uint64_t>(p) * step) % group_size);
}

CoreAssignment assign_cores(WiringPattern pattern, std::uint32_t p, std::uint32_t j,
                            std::uint32_t m, std::uint32_t n, std::uint32_t group_size) {
  if (m + n > group_size)
    throw std::invalid_argument("assign_cores: m + n exceeds h/r");
  std::uint32_t offset = pattern_offset(pattern, p, m, group_size);
  std::uint32_t base = j * group_size;
  auto core_at = [&](std::uint32_t slot) { return base + (offset + slot) % group_size; };

  CoreAssignment a;
  a.core_of_blade_b.reserve(m);
  for (std::uint32_t i = 0; i < m; ++i) a.core_of_blade_b.push_back(core_at(i));
  a.core_of_blade_a.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) a.core_of_blade_a.push_back(core_at(m + i));
  a.core_of_agg.reserve(group_size - m - n);
  for (std::uint32_t t = 0; t < group_size - m - n; ++t)
    a.core_of_agg.push_back(core_at(m + n + t));
  return a;
}

std::uint32_t side_peer_column(std::uint32_t i, std::uint32_t j, std::uint32_t w) {
  if (w == 0) throw std::invalid_argument("side_peer_column: w must be positive");
  if (j >= w) throw std::invalid_argument("side_peer_column: column out of range");
  // (w - 1 - j + i) mod w, computed without underflow.
  return static_cast<std::uint32_t>((static_cast<std::uint64_t>(w) - 1 - j + i) % w);
}

}  // namespace flattree::core
