#include "core/flat_tree.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace flattree::core {

namespace {

obs::Counter c_builds("core.flat_tree.builds");
obs::Counter c_materializations("core.flat_tree.materializations");

}  // namespace

const char* to_string(Mode mode) {
  switch (mode) {
    case Mode::Clos: return "clos";
    case Mode::GlobalRandom: return "global-random";
    case Mode::LocalRandom: return "local-random";
  }
  return "?";
}

std::uint32_t FlatTreeConfig::default_m(std::uint32_t k) {
  return static_cast<std::uint32_t>(std::lround(static_cast<double>(k) / 8.0));
}

std::uint32_t FlatTreeConfig::default_n(std::uint32_t k) {
  return static_cast<std::uint32_t>(std::lround(2.0 * static_cast<double>(k) / 8.0));
}

std::uint32_t FlatTreeConfig::default_m_for_group(std::uint32_t group) {
  return static_cast<std::uint32_t>(std::lround(static_cast<double>(group) / 4.0));
}

std::uint32_t FlatTreeConfig::default_n_for_group(std::uint32_t group) {
  return static_cast<std::uint32_t>(std::lround(static_cast<double>(group) / 2.0));
}

FlatTreeNetwork::FlatTreeNetwork(FlatTreeConfig config) : config_(config) {
  if (config_.k < 4 || config_.k % 2 != 0)
    throw std::invalid_argument("FlatTreeNetwork: k must be even and >= 4");
  if (config_.m == FlatTreeConfig::kProfiled) config_.m = FlatTreeConfig::default_m(config_.k);
  if (config_.n == FlatTreeConfig::kProfiled) config_.n = FlatTreeConfig::default_n(config_.k);
  params_ = topo::ClosParams::fat_tree(config_.k);
  init();
}

FlatTreeNetwork::FlatTreeNetwork(const topo::ClosParams& params, std::uint32_t m,
                                 std::uint32_t n, WiringPattern pattern, PodChain chain) {
  params_ = params;
  const std::uint32_t group = params_.h() / params_.r();
  config_.k = params_.k;
  config_.m = m == FlatTreeConfig::kProfiled ? FlatTreeConfig::default_m_for_group(group) : m;
  config_.n = n == FlatTreeConfig::kProfiled ? FlatTreeConfig::default_n_for_group(group) : n;
  config_.pattern = pattern;
  config_.chain = chain;
  init();
}

void FlatTreeNetwork::init() {
  c_builds.inc();
  layout_ = PodLayout(params_, config_.m, config_.n);  // validates m + n bounds
  pattern_ = resolve_pattern(config_.pattern, params_.pods(), config_.m,
                             params_.h() / params_.r());
  build_converters();
  pair_converters();
}

NodeId FlatTreeNetwork::edge_switch(std::uint32_t pod, std::uint32_t j) const {
  return pod * (params_.d() + params_.aggs_per_pod()) + j;
}

NodeId FlatTreeNetwork::agg_switch(std::uint32_t pod, std::uint32_t i) const {
  return pod * (params_.d() + params_.aggs_per_pod()) + params_.d() + i;
}

NodeId FlatTreeNetwork::core_switch(std::uint32_t c) const {
  return params_.pods() * (params_.d() + params_.aggs_per_pod()) + c;
}

ServerId FlatTreeNetwork::server(std::uint32_t pod, std::uint32_t j, std::uint32_t s) const {
  return (pod * params_.d() + j) * params_.servers_per_edge() + s;
}

std::uint32_t FlatTreeNetwork::pod_of_server(ServerId s) const {
  return s / params_.servers_per_pod();
}

std::uint32_t FlatTreeNetwork::converter_index(std::uint32_t pod, std::uint32_t slot) const {
  return pod * layout_.converters_per_pod() + slot;
}

void FlatTreeNetwork::build_converters() {
  const std::uint32_t group = params_.h() / params_.r();
  converters_.clear();
  converters_.reserve(params_.pods() * layout_.converters_per_pod());
  for (std::uint32_t pod = 0; pod < params_.pods(); ++pod) {
    // Core slots for each edge connector family in this pod.
    for (std::uint32_t slot = 0; slot < layout_.converters_per_pod(); ++slot) {
      PodLayout::SlotInfo info = layout_.slot_info(slot);
      CoreAssignment cores =
          assign_cores(pattern_, pod, info.col, config_.m, config_.n, group);
      Converter c;
      c.type = info.blade_b ? ConverterType::SixPort : ConverterType::FourPort;
      c.pod = pod;
      c.row = info.row;
      c.col = info.col;
      c.edge = edge_switch(pod, info.col);
      c.agg = agg_switch(pod, layout_.agg_of(info.col));
      c.core = core_switch(info.blade_b ? cores.core_of_blade_b[info.row]
                                        : cores.core_of_blade_a[info.row]);
      c.server = server(pod, info.col, layout_.tapped_server(info));
      converters_.push_back(c);
    }
  }
}

void FlatTreeNetwork::pair_converters() {
  const std::uint32_t w = layout_.left_width();
  const std::uint32_t pods = params_.pods();
  if (w == 0 || config_.m == 0) return;
  const std::uint32_t last_right_pod = config_.chain == PodChain::Ring ? pods : pods - 1;
  for (std::uint32_t p = 0; p < last_right_pod; ++p) {
    std::uint32_t left_pod = (p + 1) % pods;  // pod owning the left blade
    for (std::uint32_t i = 0; i < config_.m; ++i) {
      for (std::uint32_t j = 0; j < w; ++j) {
        std::uint32_t right_col = w + side_peer_column(i, j, w);
        std::uint32_t left_idx =
            converter_index(left_pod, layout_.blade_b_slot(i, j));
        std::uint32_t right_idx =
            converter_index(p, layout_.blade_b_slot(i, right_col));
        Converter& left = converters_[left_idx];
        Converter& right = converters_[right_idx];
        if (left.peer != kNoPeer || right.peer != kNoPeer)
          throw std::logic_error("pair_converters: converter paired twice");
        left.peer = right_idx;
        right.peer = left_idx;
        right.pair_canonical = true;  // pair links emitted from the right end
      }
    }
  }
}

std::vector<ConverterConfig> FlatTreeNetwork::assign_configs(
    const std::vector<Mode>& pod_modes) const {
  if (pod_modes.size() != params_.pods())
    throw std::invalid_argument("assign_configs: one mode per pod required");
  std::vector<ConverterConfig> configs(converters_.size(), ConverterConfig::Default);
  for (std::uint32_t i = 0; i < converters_.size(); ++i) {
    const Converter& c = converters_[i];
    switch (pod_modes[c.pod]) {
      case Mode::Clos:
        configs[i] = ConverterConfig::Default;
        break;
      case Mode::LocalRandom:
        configs[i] = c.type == ConverterType::FourPort ? ConverterConfig::Local
                                                       : ConverterConfig::Default;
        break;
      case Mode::GlobalRandom:
        if (c.type == ConverterType::FourPort) {
          configs[i] = ConverterConfig::Local;
        } else if (c.peer != kNoPeer &&
                   pod_modes[converters_[c.peer].pod] == Mode::GlobalRandom) {
          configs[i] = c.row % 2 == 0 ? ConverterConfig::Side : ConverterConfig::Cross;
        } else {
          // Zone boundary or unpaired end: standalone fallback that still
          // diversifies link types within the pod.
          configs[i] = ConverterConfig::Local;
        }
        break;
    }
  }
  return configs;
}

std::vector<ConverterConfig> FlatTreeNetwork::assign_configs(Mode mode) const {
  return assign_configs(std::vector<Mode>(params_.pods(), mode));
}

topo::Topology FlatTreeNetwork::materialize(
    const std::vector<ConverterConfig>& configs) const {
  OBS_SPAN("core.flat_tree.materialize");
  c_materializations.inc();
  std::string err = validate_assignment(converters_, configs);
  if (!err.empty()) throw std::invalid_argument("materialize: " + err);

  const topo::ClosParams& p = params_;
  topo::Topology topo;

  // Switches, fat-tree id layout, per-layer port budgets.
  for (std::uint32_t pod = 0; pod < p.pods(); ++pod) {
    for (std::uint32_t j = 0; j < p.d(); ++j)
      topo.add_switch(topo::SwitchKind::Edge, static_cast<std::int32_t>(pod), j,
                      p.edge_ports());
    for (std::uint32_t i = 0; i < p.aggs_per_pod(); ++i)
      topo.add_switch(topo::SwitchKind::Aggregation, static_cast<std::int32_t>(pod), i,
                      p.agg_ports());
  }
  for (std::uint32_t c = 0; c < p.cores(); ++c)
    topo.add_switch(topo::SwitchKind::Core, -1, c, p.core_ports());

  // Servers, fat-tree id order; host decided by the tapping converter.
  for (std::uint32_t pod = 0; pod < p.pods(); ++pod) {
    for (std::uint32_t j = 0; j < p.d(); ++j) {
      for (std::uint32_t s = 0; s < p.servers_per_edge(); ++s) {
        NodeId host = edge_switch(pod, j);
        std::uint32_t conv = kNoPeer;
        if (s < config_.n) {
          conv = converter_index(pod, layout_.blade_a_slot(s, j));
        } else if (s < config_.n + config_.m) {
          conv = converter_index(pod, layout_.blade_b_slot(s - config_.n, j));
        }
        if (conv != kNoPeer) {
          const Converter& c = converters_[conv];
          switch (configs[conv]) {
            case ConverterConfig::Default: host = c.edge; break;
            case ConverterConfig::Local: host = c.agg; break;
            case ConverterConfig::Side:
            case ConverterConfig::Cross: host = c.core; break;
          }
        }
        topo.add_server(host);
      }
    }
  }

  // Intra-pod edge-aggregation mesh (never rewired).
  for (std::uint32_t pod = 0; pod < p.pods(); ++pod)
    for (std::uint32_t j = 0; j < p.d(); ++j)
      for (std::uint32_t i = 0; i < p.aggs_per_pod(); ++i)
        topo.add_link(edge_switch(pod, j), agg_switch(pod, i),
                      topo::LinkOrigin::ClosEdgeAgg);

  // Pod-core connectors: converter core connectors + direct agg uplinks.
  const std::uint32_t group = p.h() / p.r();
  for (std::uint32_t pod = 0; pod < p.pods(); ++pod) {
    for (std::uint32_t j = 0; j < p.d(); ++j) {
      CoreAssignment cores = assign_cores(pattern_, pod, j, config_.m, config_.n, group);
      // Blade B (6-port) core connectors.
      for (std::uint32_t i = 0; i < config_.m; ++i) {
        std::uint32_t conv = converter_index(pod, layout_.blade_b_slot(i, j));
        const Converter& c = converters_[conv];
        switch (configs[conv]) {
          case ConverterConfig::Default:
            topo.add_link(c.agg, c.core, topo::LinkOrigin::PodCore);
            break;
          case ConverterConfig::Local:
            topo.add_link(c.edge, c.core, topo::LinkOrigin::ConverterLocal);
            break;
          case ConverterConfig::Side:
          case ConverterConfig::Cross:
            break;  // core connector carries the relocated server
        }
      }
      // Blade A (4-port) core connectors.
      for (std::uint32_t i = 0; i < config_.n; ++i) {
        std::uint32_t conv = converter_index(pod, layout_.blade_a_slot(i, j));
        const Converter& c = converters_[conv];
        if (configs[conv] == ConverterConfig::Default)
          topo.add_link(c.agg, c.core, topo::LinkOrigin::PodCore);
        else
          topo.add_link(c.edge, c.core, topo::LinkOrigin::ConverterLocal);
      }
      // Remaining direct aggregation uplinks.
      NodeId agg = agg_switch(pod, layout_.agg_of(j));
      for (std::uint32_t core_idx : cores.core_of_agg)
        topo.add_link(agg, core_switch(core_idx), topo::LinkOrigin::PodCore);
    }
  }

  // Inter-pod side links (one emission per pair, from the canonical end).
  for (std::uint32_t idx = 0; idx < converters_.size(); ++idx) {
    const Converter& c = converters_[idx];
    if (!c.pair_canonical) continue;
    ConverterConfig cfg = configs[idx];
    if (cfg != ConverterConfig::Side && cfg != ConverterConfig::Cross) continue;
    const Converter& peer = converters_[c.peer];
    if (cfg == ConverterConfig::Side) {
      topo.add_link(c.edge, peer.edge, topo::LinkOrigin::InterPodSide);
      topo.add_link(c.agg, peer.agg, topo::LinkOrigin::InterPodSide);
    } else {
      topo.add_link(c.edge, peer.agg, topo::LinkOrigin::InterPodSide);
      topo.add_link(c.agg, peer.edge, topo::LinkOrigin::InterPodSide);
    }
  }

  topo.validate();
  return topo;
}

topo::Topology FlatTreeNetwork::build(Mode mode) const {
  return materialize(assign_configs(mode));
}

topo::Topology FlatTreeNetwork::build(const std::vector<Mode>& pod_modes) const {
  return materialize(assign_configs(pod_modes));
}

}  // namespace flattree::core
