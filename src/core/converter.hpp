#pragma once
// Converter switches (paper Figure 1).
//
// A converter is a small software-configurable circuit switch spliced into
// one edge-server link and one aggregation-core link of a Clos pod. Its
// configuration decides where the tapped server attaches and which switches
// the tapped core connector reaches:
//
//   4-port {server, edge, agg, core}:
//     default: edge-server, agg-core          (original Clos links)
//     local:   agg-server,  edge-core         (server moves to aggregation)
//   6-port adds a double side connector to a peer converter in the adjacent
//   pod; `side`/`cross` relocate the server to the core switch:
//     side:  server-core on both peers; edge-edge' and agg-agg'
//     cross: server-core on both peers; edge-agg'  and agg-edge'
//
// 4-port converters deliberately cannot relocate servers to core switches:
// doing so would force a redundant edge-aggregation link (the paper's
// "waste a link" argument), which is why the 6-port variant exists.
//
// Converters operate in the physical layer: they are modelled as pure
// rewiring state and contribute zero hops.

#include <cstdint>
#include <string>

#include "topo/topology.hpp"

namespace flattree::core {

using topo::NodeId;
using topo::ServerId;

enum class ConverterType : std::uint8_t { FourPort, SixPort };

enum class ConverterConfig : std::uint8_t {
  Default,  ///< original Clos connections
  Local,    ///< server -> aggregation; edge -> core
  Side,     ///< server -> core; peer-wise edge-edge' / agg-agg' (6-port, paired)
  Cross,    ///< server -> core; crossed edge-agg' / agg-edge' (6-port, paired)
};

const char* to_string(ConverterType type);
const char* to_string(ConverterConfig config);

inline constexpr std::uint32_t kNoPeer = ~std::uint32_t{0};

/// A converter instance with its static attachments. Attachments are fixed
/// by the pod layout and pod-core wiring; only the configuration changes at
/// run time.
struct Converter {
  ConverterType type = ConverterType::FourPort;
  std::uint32_t pod = 0;
  std::uint32_t row = 0;   ///< i within its blade matrix
  std::uint32_t col = 0;   ///< global edge index j in [0, d)

  NodeId edge = graph::kInvalidNode;  ///< tapped edge switch E_j
  NodeId agg = graph::kInvalidNode;   ///< tapped aggregation switch A_{j/r}
  NodeId core = graph::kInvalidNode;  ///< core switch its core connector reaches
  ServerId server = 0;                      ///< tapped server

  /// Peer 6-port converter (index into FlatTreeNetwork::converters()), or
  /// kNoPeer when unpaired (4-port, linear chain ends, odd-d middle column).
  std::uint32_t peer = kNoPeer;
  /// True on exactly one converter of each pair; pair links are emitted
  /// from the canonical end only.
  bool pair_canonical = false;
};

/// True when `config` is legal for a converter: side/cross require a paired
/// 6-port converter.
bool config_valid(const Converter& c, ConverterConfig config);

/// Validates a full pairwise assignment: both peers of a pair must carry
/// the same side/cross state (a pair is a joint physical configuration).
/// Returns a description of the first violation, or an empty string.
std::string validate_assignment(const std::vector<Converter>& converters,
                                const std::vector<ConverterConfig>& configs);

}  // namespace flattree::core
