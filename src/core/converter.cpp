#include "core/converter.hpp"

#include <sstream>

namespace flattree::core {

const char* to_string(ConverterType type) {
  switch (type) {
    case ConverterType::FourPort: return "4-port";
    case ConverterType::SixPort: return "6-port";
  }
  return "?";
}

const char* to_string(ConverterConfig config) {
  switch (config) {
    case ConverterConfig::Default: return "default";
    case ConverterConfig::Local: return "local";
    case ConverterConfig::Side: return "side";
    case ConverterConfig::Cross: return "cross";
  }
  return "?";
}

bool config_valid(const Converter& c, ConverterConfig config) {
  switch (config) {
    case ConverterConfig::Default:
    case ConverterConfig::Local:
      return true;
    case ConverterConfig::Side:
    case ConverterConfig::Cross:
      return c.type == ConverterType::SixPort && c.peer != kNoPeer;
  }
  return false;
}

std::string validate_assignment(const std::vector<Converter>& converters,
                                const std::vector<ConverterConfig>& configs) {
  if (converters.size() != configs.size()) return "config vector size mismatch";
  for (std::uint32_t i = 0; i < converters.size(); ++i) {
    const Converter& c = converters[i];
    ConverterConfig cfg = configs[i];
    if (!config_valid(c, cfg)) {
      std::ostringstream os;
      os << "converter " << i << " (" << to_string(c.type) << ", pod " << c.pod << ", row "
         << c.row << ", col " << c.col << ") cannot take config " << to_string(cfg);
      return os.str();
    }
    bool paired_cfg = cfg == ConverterConfig::Side || cfg == ConverterConfig::Cross;
    if (c.peer != kNoPeer) {
      ConverterConfig peer_cfg = configs[c.peer];
      bool peer_paired = peer_cfg == ConverterConfig::Side || peer_cfg == ConverterConfig::Cross;
      if (paired_cfg != peer_paired || (paired_cfg && cfg != peer_cfg)) {
        std::ostringstream os;
        os << "converter " << i << " config " << to_string(cfg) << " disagrees with peer "
           << c.peer << " config " << to_string(peer_cfg);
        return os.str();
      }
    }
  }
  return {};
}

}  // namespace flattree::core
