#include "core/controller.hpp"

#include <algorithm>
#include <map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace flattree::core {

namespace {

obs::Counter c_plans("core.controller.plans");
obs::Counter c_applies("core.controller.applies");
obs::Counter c_steps("core.controller.conversion_steps");
obs::Counter c_links_added("core.controller.links_added");
obs::Counter c_links_removed("core.controller.links_removed");
obs::Counter c_servers_moved("core.controller.servers_moved");

}  // namespace

Controller::Controller(FlatTreeConfig config) : Controller(FlatTreeNetwork(config)) {}

Controller::Controller(FlatTreeNetwork net)
    : net_(std::move(net)),
      configs_(net_.assign_configs(Mode::Clos)),
      pod_modes_(net_.params().pods(), Mode::Clos) {}

namespace {

/// Multiset of logical links as sorted (lo, hi) endpoint pairs.
std::map<std::pair<topo::NodeId, topo::NodeId>, std::size_t> link_multiset(
    const topo::Topology& topo) {
  std::map<std::pair<topo::NodeId, topo::NodeId>, std::size_t> out;
  for (const auto& link : topo.graph().links()) {
    auto lo = std::min(link.a, link.b);
    auto hi = std::max(link.a, link.b);
    ++out[{lo, hi}];
  }
  return out;
}

}  // namespace

ReconfigPlan Controller::diff(const std::vector<ConverterConfig>& from,
                              const std::vector<ConverterConfig>& to) const {
  OBS_SPAN("core.reconfig.diff");
  ReconfigPlan plan;
  for (std::uint32_t i = 0; i < from.size(); ++i)
    if (from[i] != to[i]) plan.steps.push_back({i, from[i], to[i]});
  if (plan.steps.empty()) return plan;

  topo::Topology before = net_.materialize(from);
  topo::Topology after = net_.materialize(to);
  auto before_links = link_multiset(before);
  auto after_links = link_multiset(after);
  for (const auto& [pair, count] : before_links) {
    auto it = after_links.find(pair);
    std::size_t still = it == after_links.end() ? 0 : it->second;
    if (count > still) plan.links_removed += count - still;
  }
  for (const auto& [pair, count] : after_links) {
    auto it = before_links.find(pair);
    std::size_t had = it == before_links.end() ? 0 : it->second;
    if (count > had) plan.links_added += count - had;
  }
  for (topo::ServerId s = 0; s < before.server_count(); ++s)
    if (before.host(s) != after.host(s)) ++plan.servers_moved;
  c_steps.add(plan.steps.size());
  c_links_added.add(plan.links_added);
  c_links_removed.add(plan.links_removed);
  c_servers_moved.add(plan.servers_moved);
  return plan;
}

ReconfigPlan Controller::plan(const std::vector<Mode>& target) const {
  c_plans.inc();
  return diff(configs_, net_.assign_configs(target));
}

ReconfigPlan Controller::plan(Mode target) const {
  return plan(std::vector<Mode>(net_.params().pods(), target));
}

ReconfigPlan Controller::apply(const std::vector<Mode>& target) {
  c_applies.inc();
  auto next = net_.assign_configs(target);
  ReconfigPlan executed = diff(configs_, next);
  configs_ = std::move(next);
  pod_modes_ = target;
  return executed;
}

ReconfigPlan Controller::apply(Mode target) {
  return apply(std::vector<Mode>(net_.params().pods(), target));
}

}  // namespace flattree::core
