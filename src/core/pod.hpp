#pragma once
// Flat-tree pod geometry (paper Section 2.2, Figure 3).
//
// Each pod pairs edge switch E_j with aggregation switch A_{j/r} and taps
// them with n 4-port converters (blade A) and m 6-port converters (blade B).
// Converters sit in row x column matrices on the two sides of the pod:
// columns for edges E_0..E_{w-1} are on the left, E_w..E_{d-1} on the right
// (w = floor(d/2)). Blade A rows are 0..n-1, blade B rows 0..m-1.
//
// Server tap convention: within edge switch E_j's servers (0..k/2-1 in
// attachment order), blade A row i taps server i, blade B row i taps server
// n+i; servers n+m.. stay hard-wired to the edge switch. The aggregation
// uplinks tapped are decided by the pod-core wiring (core/wiring.hpp).

#include <cstdint>

#include "topo/fat_tree.hpp"

namespace flattree::core {

/// Per-pod converter matrix geometry and slot numbering. Slots are local
/// to the pod: blade A occupies [0, n*d), blade B [n*d, (n+m)*d), with
/// column-major-by-row layout slot = row*d + col (+ blade B base).
struct PodLayout {
  std::uint32_t d = 0;  ///< edge switches per pod
  std::uint32_t r = 1;  ///< edge switches per aggregation switch
  std::uint32_t m = 0;  ///< 6-port converters per (edge, agg) pair
  std::uint32_t n = 0;  ///< 4-port converters per (edge, agg) pair

  PodLayout() = default;
  PodLayout(const topo::ClosParams& params, std::uint32_t m_, std::uint32_t n_);

  std::uint32_t left_width() const { return d / 2; }
  std::uint32_t right_width() const { return d - d / 2; }
  bool on_left(std::uint32_t col) const { return col < left_width(); }

  std::uint32_t converters_per_pod() const { return d * (m + n); }
  std::uint32_t blade_a_slot(std::uint32_t row, std::uint32_t col) const;
  std::uint32_t blade_b_slot(std::uint32_t row, std::uint32_t col) const;

  /// Inverse of the slot mapping.
  struct SlotInfo {
    bool blade_b = false;
    std::uint32_t row = 0;
    std::uint32_t col = 0;  ///< global edge index in [0, d)
  };
  SlotInfo slot_info(std::uint32_t slot) const;

  /// Aggregation switch index paired with edge `col` (= col / r).
  std::uint32_t agg_of(std::uint32_t col) const { return col / r; }

  /// Server index (within the edge switch) tapped by a slot.
  std::uint32_t tapped_server(const SlotInfo& info) const;
};

}  // namespace flattree::core
