#pragma once
// The flat-tree convertible network (paper Section 2).
//
// A FlatTreeNetwork is the *physical* plant: fat-tree(k) equipment plus
// d*(m+n) converter switches per pod with fixed attachments (pod-core
// wiring pattern, inter-pod side wiring). Its *logical* topology is a
// function of the converter configurations; `materialize` produces the
// logical Topology for any valid assignment, and `assign_configs` derives
// the assignment for the paper's operating modes:
//
//   Clos         all converters `default`  -> exactly the fat-tree
//   GlobalRandom 4-port `local`, paired 6-port `side`/`cross` by row parity
//                -> approximated network-wide random graph (Figure 2c)
//   LocalRandom  4-port `local`, 6-port `default`
//                -> approximated per-pod random graphs (Figure 2d)
//
// Hybrid mode assigns a mode per pod (Section 3.4); 6-port pairs that
// straddle a zone boundary fall back to standalone configurations (see
// DESIGN.md).

#include <cstdint>
#include <vector>

#include "core/converter.hpp"
#include "core/pod.hpp"
#include "core/wiring.hpp"
#include "topo/fat_tree.hpp"

namespace flattree::core {

/// Operating mode of a pod (and, uniformly, of the whole network).
enum class Mode : std::uint8_t { Clos, GlobalRandom, LocalRandom };

const char* to_string(Mode mode);

struct FlatTreeConfig {
  std::uint32_t k = 4;  ///< fat-tree parameter; even, >= 4

  /// 6-port (m) and 4-port (n) converters per (edge, aggregation) pair.
  /// kProfiled uses the paper's profiled values m = round(k/8),
  /// n = round(2k/8) (Section 3.2).
  static constexpr std::uint32_t kProfiled = ~std::uint32_t{0};
  std::uint32_t m = kProfiled;
  std::uint32_t n = kProfiled;

  WiringPattern pattern = WiringPattern::Auto;
  PodChain chain = PodChain::Ring;

  /// Paper's profiled defaults, rounded to the closest integer.
  static std::uint32_t default_m(std::uint32_t k);
  static std::uint32_t default_n(std::uint32_t k);
  /// Same defaults expressed in core-group units (group = h/r): the
  /// paper's m = k/8, n = 2k/8 are group/4 and group/2 on a fat-tree.
  static std::uint32_t default_m_for_group(std::uint32_t group);
  static std::uint32_t default_n_for_group(std::uint32_t group);
};

class FlatTreeNetwork {
 public:
  /// Validates and freezes the physical plant: converter attachments,
  /// pod-core core assignments, inter-pod pairings. Throws
  /// std::invalid_argument on bad parameters (odd k, m+n > k/2, ...).
  explicit FlatTreeNetwork(FlatTreeConfig config);

  /// Generic (possibly oversubscribed) Clos plant — the layouts the paper
  /// says flat-tree especially targets (Section 3.1). `m`/`n` may be
  /// FlatTreeConfig::kProfiled for group-proportional defaults.
  FlatTreeNetwork(const topo::ClosParams& params, std::uint32_t m, std::uint32_t n,
                  WiringPattern pattern = WiringPattern::Auto,
                  PodChain chain = PodChain::Ring);

  const FlatTreeConfig& config() const { return config_; }
  const topo::ClosParams& params() const { return params_; }
  const PodLayout& layout() const { return layout_; }
  /// The resolved wiring pattern (never Auto).
  WiringPattern pattern() const { return pattern_; }

  const std::vector<Converter>& converters() const { return converters_; }
  std::uint32_t converter_index(std::uint32_t pod, std::uint32_t slot) const;

  // -- switch / server id layout (identical to topo::FatTree) -------------
  NodeId edge_switch(std::uint32_t pod, std::uint32_t j) const;
  NodeId agg_switch(std::uint32_t pod, std::uint32_t i) const;
  NodeId core_switch(std::uint32_t c) const;
  ServerId server(std::uint32_t pod, std::uint32_t j, std::uint32_t s) const;
  /// Pod that server `s` belongs to (by its home edge switch).
  std::uint32_t pod_of_server(ServerId s) const;

  // -- configuration -------------------------------------------------------
  /// Converter configuration realizing `pod_modes` (one Mode per pod).
  std::vector<ConverterConfig> assign_configs(const std::vector<Mode>& pod_modes) const;
  /// Uniform mode over all pods.
  std::vector<ConverterConfig> assign_configs(Mode mode) const;

  /// Materializes the logical topology for a validated assignment.
  /// The result satisfies Topology::validate() (port budgets, connected).
  topo::Topology materialize(const std::vector<ConverterConfig>& configs) const;

  /// Convenience: assign_configs + materialize.
  topo::Topology build(Mode mode) const;
  topo::Topology build(const std::vector<Mode>& pod_modes) const;

 private:
  void init();
  void build_converters();
  void pair_converters();

  FlatTreeConfig config_;
  topo::ClosParams params_;
  PodLayout layout_;
  WiringPattern pattern_ = WiringPattern::Pattern1;
  std::vector<Converter> converters_;
};

}  // namespace flattree::core
