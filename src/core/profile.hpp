#pragma once
// (m, n) profiling (paper Sections 2.4 and 3.2).
//
// Flat-tree converts generic Clos layouts, so the server-distribution knobs
// m (6-port converters -> servers relocatable to core) and n (4-port ->
// servers relocatable to aggregation) are chosen empirically: sweep (m, n)
// under the preferred wiring pattern and keep the pair minimizing the
// average path length over all server pairs in global-random-graph mode.

#include <cstdint>
#include <vector>

#include "core/flat_tree.hpp"

namespace flattree::core {

struct ProfilePoint {
  std::uint32_t m = 0;
  std::uint32_t n = 0;
  double apl = 0.0;
};

struct ProfileResult {
  std::vector<ProfilePoint> points;  ///< sweep order: m ascending, then n
  std::uint32_t best_m = 0;
  std::uint32_t best_n = 0;
  double best_apl = 0.0;
};

/// Sweeps m, n over positive multiples of `step` (the paper uses k/8,
/// rounded to the closest integer) subject to m + n <= k/2, measuring the
/// global-RG-mode server APL. `step` 0 means the paper's k/8.
///
/// With `incremental` true, consecutive sweep points reuse one
/// inc::DynamicApsp engine: the (m, n) builds share most of their wiring,
/// so the engine diffs the graphs and repairs the cached BFS trees instead
/// of recomputing them. The APL numbers are bitwise identical to the cold
/// sweep (see src/inc/apl.hpp); only the graph.bfs.* / inc.* counters in a
/// metrics manifest tell the modes apart.
ProfileResult profile_mn(std::uint32_t k, WiringPattern pattern = WiringPattern::Auto,
                         PodChain chain = PodChain::Ring, std::uint32_t step = 0,
                         bool incremental = false);

}  // namespace flattree::core
