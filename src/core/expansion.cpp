#include "core/expansion.hpp"

#include <stdexcept>

namespace flattree::core {

ExpansionPlan plan_expansion(const topo::ClosParams& current, std::uint32_t extra_pods,
                             PodChain chain) {
  if (extra_pods == 0) throw std::invalid_argument("plan_expansion: zero pods to add");
  const std::uint32_t pods_after = current.pods() + extra_pods;
  if (current.core_ports() < pods_after)
    throw std::invalid_argument(
        "plan_expansion: core switches have no spare ports (need core_ports >= pods + "
        "extra; fat-tree layouts are full by construction)");

  ExpansionPlan plan;
  plan.before = current;
  plan.after = topo::ClosParams::make_generic(
      pods_after, current.d(), current.r(), current.h(), current.servers_per_edge(),
      current.edge_ports(), current.agg_ports(), current.core_ports());
  plan.pods_added = extra_pods;
  plan.new_switches =
      static_cast<std::size_t>(extra_pods) * (current.d() + current.aggs_per_pod());
  plan.new_servers = static_cast<std::size_t>(extra_pods) * current.servers_per_pod();
  // Every new pod lands h/r connectors per edge switch on the cores.
  plan.new_core_links = static_cast<std::size_t>(extra_pods) * current.d() *
                        (current.h() / current.r());
  // Side chain: break one seam (ring) or extend the tail (linear), then
  // connect each new pod into the chain.
  plan.side_bundles_spliced = extra_pods + (chain == PodChain::Ring ? 1 : 0);
  return plan;
}

FlatTreeNetwork expand(const FlatTreeNetwork& base, const ExpansionPlan& plan) {
  return FlatTreeNetwork(plan.after, base.config().m, base.config().n,
                         base.config().pattern, base.config().chain);
}

}  // namespace flattree::core
