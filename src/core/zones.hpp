#pragma once
// Hybrid-mode zoning (paper Sections 2.6 and 3.4).
//
// A zone is a set of pods operating in one mode. The controller places
// workloads into the zone whose topology suits them: large clusters into a
// global-random-graph zone, small all-to-all clusters into a local-random-
// graph zone. Section 3.4 splits the network into two zones at varying
// proportions and shows per-zone throughput equals that of a dedicated
// network.

#include <cstdint>
#include <vector>

#include "core/flat_tree.hpp"

namespace flattree::core {

struct ZonePartition {
  std::vector<Mode> pod_modes;  ///< one entry per pod

  /// Pods operating in `mode`, in ascending order.
  std::vector<std::uint32_t> pods_in(Mode mode) const;

  /// First round(global_fraction * pods) pods run GlobalRandom, the rest
  /// `rest` (default LocalRandom) — the paper's Section 3.4 split.
  static ZonePartition proportion(std::uint32_t pods, double global_fraction,
                                  Mode rest = Mode::LocalRandom);
};

/// Servers homed in the given pods (by fat-tree id layout), ascending.
std::vector<ServerId> servers_in_pods(const FlatTreeNetwork& net,
                                      const std::vector<std::uint32_t>& pods);

/// Simple workload descriptor for adaptive zone selection.
struct WorkloadHint {
  std::uint64_t servers_in_large_clusters = 0;  ///< clusters spanning pods
  std::uint64_t servers_in_small_clusters = 0;  ///< clusters fitting in a pod
};

/// Recommends a partition: the share of pods given to the global zone is
/// the share of servers in large clusters (rounded), at least one pod per
/// non-empty class of workload.
ZonePartition recommend_zones(std::uint32_t pods, const WorkloadHint& hint);

}  // namespace flattree::core
