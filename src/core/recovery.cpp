#include "core/recovery.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace flattree::core {

namespace {

obs::Counter c_failures_applied("core.recovery.failure_sets_applied");
obs::Counter c_failed_links("core.recovery.failed_links");
obs::Counter c_recovery_plans("core.recovery.plans");
obs::Counter c_rewired("core.recovery.converters_rewired");
obs::Counter c_unrecoverable("core.recovery.unrecoverable");

}  // namespace

bool FailureSet::contains(NodeId node) const {
  return std::find(failed_switches.begin(), failed_switches.end(), node) !=
         failed_switches.end();
}

DegradedTopology apply_failures(const topo::Topology& source, const FailureSet& failures) {
  OBS_SPAN("core.recovery.apply_failures");
  c_failures_applied.inc();
  DegradedTopology out;
  std::vector<char> failed(source.switch_count(), 0);
  for (NodeId node : failures.failed_switches)
    if (node < source.switch_count()) failed[node] = 1;

  // Rebuild with the same switch ids; drop links touching failed switches.
  for (NodeId v = 0; v < source.switch_count(); ++v) {
    const topo::SwitchInfo& info = source.info(v);
    out.topo.add_switch(info.kind, info.pod, info.index, info.ports);
  }
  for (graph::LinkId l = 0; l < source.link_count(); ++l) {
    const graph::Link& link = source.graph().link(l);
    if (failed[link.a] || failed[link.b]) {
      ++out.failed_links;
      continue;
    }
    out.topo.add_link(link.a, link.b, source.link_info(l).origin, link.capacity);
  }
  for (ServerId s = 0; s < source.server_count(); ++s) {
    NodeId host = source.host(s);
    out.topo.add_server(host);
    if (failed[host]) out.stranded_servers.push_back(s);
  }
  c_failed_links.add(out.failed_links);
  return out;
}

namespace {

/// Where a configuration homes the tapped server.
topo::NodeId server_home(const Converter& c, ConverterConfig cfg) {
  switch (cfg) {
    case ConverterConfig::Default: return c.edge;
    case ConverterConfig::Local: return c.agg;
    case ConverterConfig::Side:
    case ConverterConfig::Cross: return c.core;
  }
  return c.edge;
}

/// Best standalone configuration avoiding failed switches: prefer the
/// aggregation home, fall back to the edge. When both died no live home
/// remains — `recovered` is false and the (still stranded) server keeps
/// the `local` configuration; the caller reports it as unrecoverable
/// instead of pretending the flip rescued it.
struct StandaloneChoice {
  ConverterConfig config = ConverterConfig::Local;
  bool recovered = true;
};

StandaloneChoice safe_standalone(const Converter& c, const FailureSet& failures) {
  if (!failures.contains(c.agg)) return {ConverterConfig::Local, true};
  if (!failures.contains(c.edge)) return {ConverterConfig::Default, true};
  return {ConverterConfig::Local, false};
}

}  // namespace

RecoveryPlan plan_recovery(const FlatTreeNetwork& net,
                           const std::vector<ConverterConfig>& configs,
                           const FailureSet& failures) {
  OBS_SPAN("core.recovery.plan");
  c_recovery_plans.inc();
  RecoveryPlan plan;
  plan.configs = configs;
  std::vector<ConverterConfig>& recovered = plan.configs;
  const auto& converters = net.converters();
  std::vector<char> flipped(converters.size(), 0);
  auto flip_standalone = [&](std::uint32_t idx) {
    StandaloneChoice choice = safe_standalone(converters[idx], failures);
    recovered[idx] = choice.config;
    flipped[idx] = 1;
    if (!choice.recovered) plan.unrecoverable.push_back(idx);
  };
  for (std::uint32_t i = 0; i < converters.size(); ++i) {
    if (flipped[i]) continue;  // peer of an already-handled pair
    const Converter& c = converters[i];
    ConverterConfig cfg = recovered[i];
    bool paired_cfg = cfg == ConverterConfig::Side || cfg == ConverterConfig::Cross;
    if (paired_cfg) {
      // A side/cross pair is a joint configuration: if either end homes
      // its server on a failed core, flip BOTH ends to safe standalone
      // configurations (standalone choices need not match). The loop
      // visits the pair at its lower index while both ends still carry
      // the paired config, so each pair is handled exactly once.
      const Converter& peer = converters[c.peer];
      if (!failures.contains(c.core) && !failures.contains(peer.core)) continue;
      flip_standalone(i);
      flip_standalone(c.peer);
    } else if (failures.contains(server_home(c, cfg))) {
      flip_standalone(i);
    }
  }
  std::sort(plan.unrecoverable.begin(), plan.unrecoverable.end());
  c_unrecoverable.add(plan.unrecoverable.size());
  if (obs::enabled()) {
    std::uint64_t rewired = 0;
    for (std::uint32_t i = 0; i < converters.size(); ++i)
      if (recovered[i] != configs[i]) ++rewired;
    c_rewired.add(rewired);
  }
  return plan;
}

std::size_t stranded_server_count(const FlatTreeNetwork& net,
                                  const std::vector<ConverterConfig>& configs,
                                  const FailureSet& failures) {
  topo::Topology t = net.materialize(configs);
  std::size_t stranded = 0;
  for (ServerId s = 0; s < t.server_count(); ++s)
    if (failures.contains(t.host(s))) ++stranded;
  return stranded;
}

}  // namespace flattree::core
