#include "core/recovery.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace flattree::core {

namespace {

obs::Counter c_failures_applied("core.recovery.failure_sets_applied");
obs::Counter c_failed_links("core.recovery.failed_links");
obs::Counter c_recovery_plans("core.recovery.plans");
obs::Counter c_rewired("core.recovery.converters_rewired");
obs::Counter c_unrecoverable("core.recovery.unrecoverable");

}  // namespace

void FailureSet::normalize(std::size_t switch_count) {
  std::sort(failed_switches.begin(), failed_switches.end());
  failed_switches.erase(std::unique(failed_switches.begin(), failed_switches.end()),
                        failed_switches.end());
  if (!failed_switches.empty() && failed_switches.back() >= switch_count)
    throw std::invalid_argument("FailureSet: switch id " +
                                std::to_string(failed_switches.back()) +
                                " out of range (have " + std::to_string(switch_count) +
                                " switches)");
}

bool FailureSet::contains(NodeId node) const {
  if (std::is_sorted(failed_switches.begin(), failed_switches.end()))
    return std::binary_search(failed_switches.begin(), failed_switches.end(), node);
  return std::find(failed_switches.begin(), failed_switches.end(), node) !=
         failed_switches.end();
}

FailureMask::FailureMask(const FailureSet& failures, std::size_t switch_count)
    : mask_(switch_count, 0) {
  for (NodeId node : failures.failed_switches) {
    if (node >= switch_count)
      throw std::invalid_argument("FailureSet: switch id " + std::to_string(node) +
                                  " out of range (have " + std::to_string(switch_count) +
                                  " switches)");
    if (mask_[node] == 0) {
      mask_[node] = 1;
      ++count_;
    }
  }
}

DegradedTopology apply_failures(const topo::Topology& source, const FailureSet& failures) {
  OBS_SPAN("core.recovery.apply_failures");
  c_failures_applied.inc();
  DegradedTopology out;
  FailureMask failed(failures, source.switch_count());

  // Rebuild with the same switch ids; drop links touching failed switches.
  for (NodeId v = 0; v < source.switch_count(); ++v) {
    const topo::SwitchInfo& info = source.info(v);
    out.topo.add_switch(info.kind, info.pod, info.index, info.ports);
  }
  for (graph::LinkId l = 0; l < source.link_count(); ++l) {
    const graph::Link& link = source.graph().link(l);
    if (failed.failed(link.a) || failed.failed(link.b)) {
      ++out.failed_links;
      continue;
    }
    out.topo.add_link(link.a, link.b, source.link_info(l).origin, link.capacity);
  }
  for (ServerId s = 0; s < source.server_count(); ++s) {
    NodeId host = source.host(s);
    out.topo.add_server(host);
    if (failed.failed(host)) out.stranded_servers.push_back(s);
  }
  c_failed_links.add(out.failed_links);
  return out;
}

namespace {

/// Where a configuration homes the tapped server.
topo::NodeId server_home(const Converter& c, ConverterConfig cfg) {
  switch (cfg) {
    case ConverterConfig::Default: return c.edge;
    case ConverterConfig::Local: return c.agg;
    case ConverterConfig::Side:
    case ConverterConfig::Cross: return c.core;
  }
  return c.edge;
}

/// Best standalone configuration avoiding failed switches: prefer the
/// aggregation home, fall back to the edge. When both died no live home
/// remains — `recovered` is false and the (still stranded) server keeps
/// the `local` configuration; the caller reports it as unrecoverable
/// instead of pretending the flip rescued it.
struct StandaloneChoice {
  ConverterConfig config = ConverterConfig::Local;
  bool recovered = true;
};

StandaloneChoice safe_standalone(const Converter& c, const FailureMask& failed) {
  if (!failed.failed(c.agg)) return {ConverterConfig::Local, true};
  if (!failed.failed(c.edge)) return {ConverterConfig::Default, true};
  return {ConverterConfig::Local, false};
}

}  // namespace

RecoveryPlan plan_recovery(const FlatTreeNetwork& net,
                           const std::vector<ConverterConfig>& configs,
                           const FailureSet& failures) {
  OBS_SPAN("core.recovery.plan");
  c_recovery_plans.inc();
  FailureMask failed(failures, net.params().total_switches());
  RecoveryPlan plan;
  plan.configs = configs;
  std::vector<ConverterConfig>& recovered = plan.configs;
  const auto& converters = net.converters();
  std::vector<char> flipped(converters.size(), 0);
  auto flip_standalone = [&](std::uint32_t idx) {
    StandaloneChoice choice = safe_standalone(converters[idx], failed);
    recovered[idx] = choice.config;
    flipped[idx] = 1;
    if (!choice.recovered) plan.unrecoverable.push_back(idx);
  };
  for (std::uint32_t i = 0; i < converters.size(); ++i) {
    if (flipped[i]) continue;  // peer of an already-handled pair
    const Converter& c = converters[i];
    ConverterConfig cfg = recovered[i];
    bool paired_cfg = cfg == ConverterConfig::Side || cfg == ConverterConfig::Cross;
    if (paired_cfg) {
      // A side/cross pair is a joint configuration: if either end homes
      // its server on a failed core, flip BOTH ends to safe standalone
      // configurations (standalone choices need not match). The loop
      // visits the pair at its lower index while both ends still carry
      // the paired config, so each pair is handled exactly once.
      const Converter& peer = converters[c.peer];
      if (!failed.failed(c.core) && !failed.failed(peer.core)) continue;
      flip_standalone(i);
      flip_standalone(c.peer);
    } else if (failed.failed(server_home(c, cfg))) {
      flip_standalone(i);
    }
  }
  std::sort(plan.unrecoverable.begin(), plan.unrecoverable.end());
  c_unrecoverable.add(plan.unrecoverable.size());
  if (obs::enabled()) {
    std::uint64_t rewired = 0;
    for (std::uint32_t i = 0; i < converters.size(); ++i)
      if (recovered[i] != configs[i]) ++rewired;
    c_rewired.add(rewired);
  }
  return plan;
}

std::size_t stranded_server_count(const FlatTreeNetwork& net,
                                  const std::vector<ConverterConfig>& configs,
                                  const FailureSet& failures) {
  topo::Topology t = net.materialize(configs);
  FailureMask failed(failures, t.switch_count());
  std::size_t stranded = 0;
  for (ServerId s = 0; s < t.server_count(); ++s)
    if (failed.failed(t.host(s))) ++stranded;
  return stranded;
}

}  // namespace flattree::core
