#include "core/pod.hpp"

#include <stdexcept>

namespace flattree::core {

PodLayout::PodLayout(const topo::ClosParams& params, std::uint32_t m_, std::uint32_t n_)
    : d(params.d()), r(params.r()), m(m_), n(n_) {
  if (m + n > params.h() / params.r())
    throw std::invalid_argument("PodLayout: m + n exceeds h/r core connectors per edge");
  if (m + n > params.servers_per_edge())
    throw std::invalid_argument("PodLayout: m + n exceeds servers per edge switch");
}

std::uint32_t PodLayout::blade_a_slot(std::uint32_t row, std::uint32_t col) const {
  if (row >= n || col >= d) throw std::out_of_range("PodLayout::blade_a_slot");
  return row * d + col;
}

std::uint32_t PodLayout::blade_b_slot(std::uint32_t row, std::uint32_t col) const {
  if (row >= m || col >= d) throw std::out_of_range("PodLayout::blade_b_slot");
  return n * d + row * d + col;
}

PodLayout::SlotInfo PodLayout::slot_info(std::uint32_t slot) const {
  if (slot >= converters_per_pod()) throw std::out_of_range("PodLayout::slot_info");
  SlotInfo info;
  if (slot < n * d) {
    info.blade_b = false;
    info.row = slot / d;
    info.col = slot % d;
  } else {
    slot -= n * d;
    info.blade_b = true;
    info.row = slot / d;
    info.col = slot % d;
  }
  return info;
}

std::uint32_t PodLayout::tapped_server(const SlotInfo& info) const {
  return info.blade_b ? n + info.row : info.row;
}

}  // namespace flattree::core
