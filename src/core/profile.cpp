#include "core/profile.hpp"

#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "inc/apl.hpp"
#include "inc/dynamic_bfs.hpp"
#include "topo/apl.hpp"

namespace flattree::core {

ProfileResult profile_mn(std::uint32_t k, WiringPattern pattern, PodChain chain,
                         std::uint32_t step, bool incremental) {
  if (step == 0)
    step = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(std::lround(static_cast<double>(k) / 8.0)));
  ProfileResult result;
  result.best_apl = std::numeric_limits<double>::infinity();
  std::unique_ptr<inc::DynamicApsp> engine;  // shared across sweep points
  for (std::uint32_t m = step; m <= k / 2; m += step) {
    for (std::uint32_t n = step; m + n <= k / 2; n += step) {
      FlatTreeConfig cfg;
      cfg.k = k;
      cfg.m = m;
      cfg.n = n;
      cfg.pattern = pattern;
      cfg.chain = chain;
      FlatTreeNetwork net(cfg);
      topo::Topology topo = net.build(Mode::GlobalRandom);
      double apl;
      if (incremental) {
        if (engine == nullptr)
          engine = std::make_unique<inc::DynamicApsp>(topo.graph());
        else
          engine->retarget(topo.graph());
        apl = inc::server_apl(*engine, topo).average;
      } else {
        apl = topo::server_apl(topo).average;
      }
      result.points.push_back({m, n, apl});
      if (apl < result.best_apl) {
        result.best_apl = apl;
        result.best_m = m;
        result.best_n = n;
      }
    }
  }
  if (result.points.empty())
    throw std::invalid_argument("profile_mn: no feasible (m, n) under m + n <= k/2");
  return result;
}

}  // namespace flattree::core
