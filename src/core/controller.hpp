#pragma once
// Centralized control plane (paper Section 2.6).
//
// The controller owns the physical plant (a FlatTreeNetwork), tracks the
// live converter configuration, and converts the network between modes.
// Conversions are expressed as ReconfigPlans — the exact set of converter
// reconfigurations plus the resulting logical link/server-attachment churn —
// which is what an operator (or an SDN rule compiler) would push to the
// converter switches and routing layer.

#include <cstdint>
#include <vector>

#include "core/flat_tree.hpp"
#include "core/zones.hpp"

namespace flattree::core {

/// One converter state change.
struct ReconfigStep {
  std::uint32_t converter = 0;
  ConverterConfig from = ConverterConfig::Default;
  ConverterConfig to = ConverterConfig::Default;
};

/// A planned conversion and its logical effect.
struct ReconfigPlan {
  std::vector<ReconfigStep> steps;
  std::size_t links_removed = 0;   ///< logical links that disappear
  std::size_t links_added = 0;     ///< logical links that appear
  std::size_t servers_moved = 0;   ///< servers whose host switch changes

  bool empty() const { return steps.empty(); }
};

class Controller {
 public:
  /// Boots the network in Clos mode (all converters `default`).
  explicit Controller(FlatTreeConfig config);
  /// Takes ownership of an already-built plant (generic Clos layouts,
  /// expansion results) and boots it in Clos mode.
  explicit Controller(FlatTreeNetwork net);

  const FlatTreeNetwork& network() const { return net_; }
  const std::vector<ConverterConfig>& current_configs() const { return configs_; }
  const std::vector<Mode>& pod_modes() const { return pod_modes_; }

  /// Plans a conversion to per-pod `target` modes without applying it.
  ReconfigPlan plan(const std::vector<Mode>& target) const;
  ReconfigPlan plan(Mode target) const;

  /// Applies a conversion and returns the executed plan.
  ReconfigPlan apply(const std::vector<Mode>& target);
  ReconfigPlan apply(Mode target);
  ReconfigPlan apply(const ZonePartition& zones) { return apply(zones.pod_modes); }

  /// Logical topology under the live configuration.
  topo::Topology topology() const { return net_.materialize(configs_); }

 protected:
  // Subclasses (fault::ResilientController) drive the configuration
  // directly — partial plan application and fault-aware recovery mutate
  // configs_ outside the mode-level apply() path.
  ReconfigPlan diff(const std::vector<ConverterConfig>& from,
                    const std::vector<ConverterConfig>& to) const;

  FlatTreeNetwork net_;
  std::vector<ConverterConfig> configs_;
  std::vector<Mode> pod_modes_;
};

}  // namespace flattree::core
