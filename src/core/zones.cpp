#include "core/zones.hpp"

#include <cmath>
#include <stdexcept>

namespace flattree::core {

std::vector<std::uint32_t> ZonePartition::pods_in(Mode mode) const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t p = 0; p < pod_modes.size(); ++p)
    if (pod_modes[p] == mode) out.push_back(p);
  return out;
}

ZonePartition ZonePartition::proportion(std::uint32_t pods, double global_fraction,
                                        Mode rest) {
  if (global_fraction < 0.0 || global_fraction > 1.0)
    throw std::invalid_argument("ZonePartition::proportion: fraction outside [0,1]");
  std::uint32_t global_pods = static_cast<std::uint32_t>(
      std::lround(global_fraction * static_cast<double>(pods)));
  ZonePartition z;
  z.pod_modes.assign(pods, rest);
  for (std::uint32_t p = 0; p < global_pods; ++p) z.pod_modes[p] = Mode::GlobalRandom;
  return z;
}

std::vector<ServerId> servers_in_pods(const FlatTreeNetwork& net,
                                      const std::vector<std::uint32_t>& pods) {
  std::vector<ServerId> out;
  const std::uint32_t per_pod = net.params().servers_per_pod();
  for (std::uint32_t pod : pods) {
    ServerId base = pod * per_pod;
    for (std::uint32_t s = 0; s < per_pod; ++s) out.push_back(base + s);
  }
  return out;
}

ZonePartition recommend_zones(std::uint32_t pods, const WorkloadHint& hint) {
  std::uint64_t total = hint.servers_in_large_clusters + hint.servers_in_small_clusters;
  if (total == 0) return ZonePartition::proportion(pods, 0.0, Mode::Clos);
  double fraction = static_cast<double>(hint.servers_in_large_clusters) /
                    static_cast<double>(total);
  std::uint32_t global_pods =
      static_cast<std::uint32_t>(std::lround(fraction * static_cast<double>(pods)));
  if (hint.servers_in_large_clusters > 0 && global_pods == 0) global_pods = 1;
  if (hint.servers_in_small_clusters > 0 && global_pods == pods) global_pods = pods - 1;
  return ZonePartition::proportion(
      pods, static_cast<double>(global_pods) / static_cast<double>(pods));
}

}  // namespace flattree::core
