#pragma once
// Failure model and convertibility-based recovery (paper Section 5:
// "convertibility can play a broader role in network management, e.g.
// self-recovery of the topology from failures").
//
// In a static topology a failed core switch strands everything wired to
// it. In flat-tree the converter that wired a server to a core can simply
// be reconfigured: a 6-port pair in side/cross whose core died flips to a
// standalone configuration, re-homing the server onto the aggregation
// switch instantly — no recabling. This module models switch failures,
// materializes the degraded logical topology, and computes the recovery
// reconfiguration.

#include <cstdint>
#include <vector>

#include "core/flat_tree.hpp"

namespace flattree::core {

/// Failed equipment (switch granularity; converter switches are assumed
/// reliable — they are passive circuit devices. src/fault models the
/// richer time-ordered fault classes: links, converters, repairs).
struct FailureSet {
  std::vector<NodeId> failed_switches;

  /// Canonicalizes the set in place: sorts, drops duplicates, and throws
  /// std::invalid_argument when any id is >= `switch_count`. The recovery
  /// entry points (apply_failures, plan_recovery, stranded_server_count)
  /// normalize internally, so raw (unsorted, duplicated) input remains
  /// accepted there; call this yourself before relying on contains().
  void normalize(std::size_t switch_count);

  /// Membership test. O(log n) via binary search on a normalized set,
  /// O(n) fallback scan otherwise (correct either way; the hot per-link /
  /// per-converter paths use FailureMask instead and never call this).
  bool contains(NodeId node) const;
};

/// Dense O(1) failure lookup built once per recovery operation — the
/// sorted-vector/bitset replacement for the per-link FailureSet::contains
/// scans apply_failures and plan_recovery used to do.
class FailureMask {
 public:
  /// Builds the mask; duplicates collapse, out-of-range ids throw
  /// std::invalid_argument (the validation layer for raw failure input).
  FailureMask(const FailureSet& failures, std::size_t switch_count);

  bool failed(NodeId node) const { return mask_[node] != 0; }
  /// Number of distinct failed switches.
  std::size_t count() const { return count_; }

 private:
  std::vector<char> mask_;
  std::size_t count_ = 0;
};

/// The degraded logical network: `topo` with failed switches' links
/// removed (the switches stay as isolated graph nodes so ids are stable).
struct DegradedTopology {
  topo::Topology topo;
  /// Servers with no usable attachment (homed on a failed switch).
  std::vector<ServerId> stranded_servers;
  /// Links lost to the failures.
  std::size_t failed_links = 0;
};

/// Applies failures to a materialized topology. Servers on failed
/// switches are reported stranded; all other servers keep their host.
DegradedTopology apply_failures(const topo::Topology& topo, const FailureSet& failures);

/// Outcome of plan_recovery. `configs` is a valid full assignment
/// (validate_assignment passes); `unrecoverable` lists the converters
/// whose tapped server could not be re-homed onto any live switch —
/// every standalone home (aggregation and edge) failed too. Those
/// converters keep a standalone configuration in `configs` but their
/// servers stay stranded; pretending otherwise would silently home them
/// on a dead switch.
struct RecoveryPlan {
  std::vector<ConverterConfig> configs;
  std::vector<std::uint32_t> unrecoverable;  ///< converter indices, ascending
};

/// Recovery by reconfiguration: every converter whose configuration homes
/// its server on a failed switch is flipped — side/cross pairs jointly —
/// to the best standalone configuration avoiding the failures (prefer the
/// aggregation home, fall back to the edge). Configs not affected by the
/// failures are untouched. Converters with no live home are reported in
/// RecoveryPlan::unrecoverable (obs counter core.recovery.unrecoverable).
RecoveryPlan plan_recovery(const FlatTreeNetwork& net,
                           const std::vector<ConverterConfig>& configs,
                           const FailureSet& failures);

/// Count of servers that would be stranded under `configs` + `failures`
/// (before applying any recovery).
std::size_t stranded_server_count(const FlatTreeNetwork& net,
                                  const std::vector<ConverterConfig>& configs,
                                  const FailureSet& failures);

}  // namespace flattree::core
