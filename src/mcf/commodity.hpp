#pragma once
// Commodities for the maximum concurrent flow problem.
//
// The paper's throughput metric: maximize lambda such that every commodity
// (src, dst, demand d) ships lambda*d concurrently under unit link
// capacities, with server links relaxed (uncapacitated). Relaxed server
// links mean commodities live at *switch* level: server-pair demands are
// aggregated into switch-pair demands (identical optimum, far smaller
// instance), and pairs on the same switch drop out entirely.

#include <cstdint>
#include <vector>

#include "topo/topology.hpp"

namespace flattree::mcf {

using graph::NodeId;

/// A switch-level demand: ship `demand` units from src to dst.
struct Commodity {
  NodeId src = 0;
  NodeId dst = 0;
  double demand = 1.0;
};

/// A server-level demand (endpoints are ServerIds of a Topology).
struct ServerDemand {
  topo::ServerId src = 0;
  topo::ServerId dst = 0;
  double demand = 1.0;
};

/// Maps server demands onto host switches and merges duplicates.
/// Same-switch pairs are dropped (server links are uncapacitated).
/// Direction matters (full-duplex links): (a,b) and (b,a) stay distinct.
std::vector<Commodity> aggregate_to_switches(const topo::Topology& topo,
                                             const std::vector<ServerDemand>& demands);

/// Commodities sharing a source, for solver source-tree reuse.
struct SourceGroup {
  NodeId src = 0;
  std::vector<std::pair<NodeId, double>> targets;  ///< (dst, demand)
  double total_demand = 0.0;
};

/// Groups commodities by source node, preserving first-appearance order of
/// sources and the input order of targets within each group.
std::vector<SourceGroup> group_by_source(const std::vector<Commodity>& commodities);

/// Sum of demands.
double total_demand(const std::vector<Commodity>& commodities);

}  // namespace flattree::mcf
