#include "mcf/garg_koenemann.hpp"

#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>
#include <unordered_map>

#include "exec/parallel_for.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace flattree::mcf {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Per-solve / per-phase / per-augmentation accounting. Nothing is recorded
// per arc, so the enabled-path overhead stays well under the 3% budget on
// the solver's wall time (see bench_micro).
obs::Counter c_gk_solves("mcf.gk.solves");
obs::Counter c_gk_phases("mcf.gk.phases");
obs::Counter c_gk_augmentations("mcf.gk.augmentations");
obs::Counter c_gk_dijkstras("mcf.gk.dijkstra_runs");
obs::Counter c_gk_stale("mcf.gk.stale_retrees");
obs::Counter c_gk_warm_exact("mcf.gk.warm_exact_resumes");
obs::Counter c_gk_warm_dual("mcf.gk.warm_dual_seeds");
obs::Counter c_gk_unreachable("mcf.gk.unreachable_commodities");
obs::Counter c_gk_budget_stops("mcf.gk.budget_stops");
// Cross-filed under inc.*: the incremental-sweep win this counter measures
// belongs to the inc subsystem's ledger even though the solver records it.
obs::Counter c_warm_phases_saved("inc.mcf.warm_phases_saved");
// Dual-bound trajectory: D(l) grows from ~0 to 1 across phases; the
// histogram records its value at every phase end, so the bucket profile
// shows how the certificate tightened over the run.
obs::Histogram h_gk_dsum("mcf.gk.d_sum_per_phase",
                         obs::Histogram::linear_bounds(0.1, 0.1, 10));
obs::Gauge g_gk_lambda_lower("mcf.gk.last_lambda_lower");
obs::Gauge g_gk_lambda_upper("mcf.gk.last_lambda_upper");

/// Directed view of an undirected Graph: arc 2l = link l (a->b),
/// arc 2l+1 = (b->a), each with the full link capacity.
struct DirectedNet {
  std::size_t nodes = 0;
  std::vector<NodeId> head;       ///< arc -> destination node
  std::vector<double> cap;        ///< arc capacity
  std::vector<std::uint32_t> offset;  ///< CSR: arcs leaving each node
  std::vector<std::uint32_t> arcs;    ///< CSR payload: arc ids

  explicit DirectedNet(const graph::Graph& g) {
    nodes = g.node_count();
    const auto& links = g.links();
    head.resize(links.size() * 2);
    cap.resize(links.size() * 2);
    offset.assign(nodes + 1, 0);
    for (std::size_t l = 0; l < links.size(); ++l) {
      head[2 * l] = links[l].b;
      head[2 * l + 1] = links[l].a;
      cap[2 * l] = cap[2 * l + 1] = links[l].capacity;
      ++offset[links[l].a + 1];
      ++offset[links[l].b + 1];
    }
    for (std::size_t v = 1; v <= nodes; ++v) offset[v] += offset[v - 1];
    arcs.resize(links.size() * 2);
    std::vector<std::uint32_t> cursor(offset.begin(), offset.end() - 1);
    for (std::size_t l = 0; l < links.size(); ++l) {
      arcs[cursor[links[l].a]++] = static_cast<std::uint32_t>(2 * l);
      arcs[cursor[links[l].b]++] = static_cast<std::uint32_t>(2 * l + 1);
    }
  }

  std::size_t arc_count() const { return head.size(); }
};

struct Tree {
  std::vector<double> dist;
  std::vector<std::uint32_t> parent_arc;  ///< arc entering each node
};

void dijkstra(const DirectedNet& net, NodeId src, const std::vector<double>& length,
              Tree& tree) {
  tree.dist.assign(net.nodes, kInf);
  tree.parent_arc.assign(net.nodes, ~0u);
  struct Entry {
    double d;
    NodeId v;
    bool operator>(const Entry& o) const { return d > o.d; }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  tree.dist[src] = 0.0;
  heap.push({0.0, src});
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (d > tree.dist[u]) continue;
    for (std::uint32_t idx = net.offset[u]; idx < net.offset[u + 1]; ++idx) {
      std::uint32_t a = net.arcs[idx];
      NodeId v = net.head[a];
      double nd = d + length[a];
      if (nd < tree.dist[v]) {
        tree.dist[v] = nd;
        tree.parent_arc[v] = a;
        heap.push({nd, v});
      }
    }
  }
}

/// Tail node of an arc (the node it leaves).
NodeId arc_tail(const graph::Graph& g, std::uint32_t arc) {
  const graph::Link& l = g.link(arc / 2);
  return arc % 2 == 0 ? l.a : l.b;
}

}  // namespace

McfResult max_concurrent_flow(const graph::Graph& g,
                              const std::vector<Commodity>& commodities,
                              const McfOptions& options) {
  if (commodities.empty())
    throw std::invalid_argument("max_concurrent_flow: no commodities");
  for (const Commodity& c : commodities) {
    if (c.src == c.dst) throw std::invalid_argument("max_concurrent_flow: src == dst");
    if (c.demand <= 0.0)
      throw std::invalid_argument("max_concurrent_flow: non-positive demand");
  }
  const double eps = options.epsilon;
  if (eps <= 0.0 || eps >= 1.0)
    throw std::invalid_argument("max_concurrent_flow: epsilon outside (0,1)");

  // Zero or negative capacities would turn delta / cap into inf/NaN and
  // poison d_sum and every Dijkstra run; reject them before any work.
  for (const graph::Link& link : g.links()) {
    if (!(link.capacity > 0.0) || !std::isfinite(link.capacity))
      throw std::invalid_argument(
          "max_concurrent_flow: non-positive or non-finite link capacity");
  }
  // DirectedNet expands every link slot; tombstoned slots would silently
  // re-admit dead links, so edited graphs are rejected outright (solve on
  // the materialized topology instead — inc::McfWarmCache does).
  if (g.live_link_count() != g.link_count())
    throw std::invalid_argument("max_concurrent_flow: graph has tombstoned links");

  // -- unreachable-commodity pre-pass (allow_unreachable) ------------------
  // Arcs are symmetric (full-duplex links), so directed reachability
  // classes are exactly the undirected connected components; a union-find
  // over the link list labels them without touching the CSR.
  if (options.allow_unreachable) {
    std::vector<NodeId> parent(g.node_count());
    for (NodeId v = 0; v < g.node_count(); ++v) parent[v] = v;
    auto find = [&](NodeId v) {
      while (parent[v] != v) {
        parent[v] = parent[parent[v]];
        v = parent[v];
      }
      return v;
    };
    for (const graph::Link& link : g.links()) parent[find(link.a)] = find(link.b);

    std::vector<std::uint32_t> unreachable;
    std::vector<Commodity> reachable;
    std::vector<std::size_t> reach_index;
    for (std::size_t i = 0; i < commodities.size(); ++i) {
      if (find(commodities[i].src) != find(commodities[i].dst))
        unreachable.push_back(static_cast<std::uint32_t>(i));
      else {
        reachable.push_back(commodities[i]);
        reach_index.push_back(i);
      }
    }
    if (!unreachable.empty()) {
      c_gk_unreachable.add(unreachable.size());
      double total_demand = 0.0, reachable_demand = 0.0;
      for (const Commodity& c : commodities) total_demand += c.demand;
      for (const Commodity& c : reachable) reachable_demand += c.demand;

      McfResult out;
      out.unreachable = std::move(unreachable);
      out.served_fraction = reachable_demand / total_demand;
      out.arc_flow.assign(g.link_count() * 2, 0.0);
      out.commodity_routed.assign(commodities.size(), 0.0);
      if (reachable.empty()) {
        // Every commodity disconnected: the degenerate zero solve. Both
        // bounds are 0 (nothing routable, and zero is a valid optimum for
        // the empty sub-instance), not a truncation.
        out.lambda_upper = 0.0;
        return out;
      }
      // Certified solve of the reachable sub-instance. Warm start / export
      // are bypassed: their per-commodity arrays are aligned with the full
      // input, not the filtered one.
      McfOptions sub = options;
      sub.allow_unreachable = false;
      sub.warm_start = nullptr;
      sub.export_state = nullptr;
      McfResult r = max_concurrent_flow(g, reachable, sub);
      out.lambda_lower = r.lambda_lower;
      out.lambda_upper = r.lambda_upper;
      out.max_congestion = r.max_congestion;
      out.phases = r.phases;
      out.augmentations = r.augmentations;
      out.dijkstra_runs = r.dijkstra_runs;
      out.truncated = r.truncated;
      out.arc_flow = std::move(r.arc_flow);
      for (std::size_t j = 0; j < reach_index.size(); ++j)
        out.commodity_routed[reach_index[j]] = r.commodity_routed[j];
      return out;
    }
  }

  OBS_SPAN("gk.solve");
  c_gk_solves.inc();

  DirectedNet net(g);
  const std::size_t m = net.arc_count();
  if (m == 0) throw std::invalid_argument("max_concurrent_flow: empty graph");

  const double delta = std::pow(static_cast<double>(m) / (1.0 - eps), -1.0 / eps);
  std::vector<double> length(m);
  std::vector<double> flow(m, 0.0);
  for (std::size_t a = 0; a < m; ++a) length[a] = delta / net.cap[a];
  double d_sum = delta * static_cast<double>(m);  // D(l) = sum length*cap

  auto groups = group_by_source(commodities);
  // Per-(group,target) routed totals for the primal bound.
  std::vector<std::vector<double>> routed(groups.size());
  for (std::size_t gi = 0; gi < groups.size(); ++gi)
    routed[gi].assign(groups[gi].targets.size(), 0.0);

  // Commodity index -> (group, target) slot. group_by_source appends
  // targets in input order within each group, so replaying that order maps
  // the caller's commodity indices onto (group, target) slots exactly;
  // used for commodity_routed, warm-state export, and warm-state replay.
  std::vector<std::pair<std::size_t, std::size_t>> slot_of(commodities.size());
  {
    std::unordered_map<NodeId, std::size_t> group_index;
    for (std::size_t gi = 0; gi < groups.size(); ++gi)
      group_index.emplace(groups[gi].src, gi);
    std::vector<std::size_t> next_target(groups.size(), 0);
    for (std::size_t i = 0; i < commodities.size(); ++i) {
      std::size_t gi = group_index.at(commodities[i].src);
      slot_of[i] = {gi, next_target[gi]++};
    }
  }

  McfResult result;
  std::uint64_t phase_base = 0;

  // -- warm start (see McfWarmState) ---------------------------------------
  if (options.warm_start != nullptr && !options.warm_start->empty()) {
    const McfWarmState& w = *options.warm_start;
    if (w.length.size() != m)
      throw std::invalid_argument("max_concurrent_flow: warm state arc count mismatch");
    if (w.exact) {
      // Identical instance (caller-asserted): restore the full terminal
      // state. A converged state makes the main loop exit immediately, so
      // everything downstream recomputes bitwise what the prior run saw.
      if (!w.converged || w.arc_flow.size() != m ||
          w.routed.size() != commodities.size())
        throw std::invalid_argument("max_concurrent_flow: exact warm state incomplete");
      length = w.length;
      flow = w.arc_flow;
      d_sum = w.d_sum;
      for (std::size_t i = 0; i < commodities.size(); ++i)
        routed[slot_of[i].first][slot_of[i].second] = w.routed[i];
      phase_base = w.phases;
      result.warm_phases_saved = w.phases;
      c_gk_warm_exact.inc();
      c_warm_phases_saved.add(w.phases);
    } else {
      // Changed instance: trust only the duals. Rescaling back to the cold
      // start's total D(l) = delta*m and clamping to the cold floor keeps
      // every invariant of the analysis (lengths >= delta/cap, growth-only
      // updates); the profile just starts biased away from arcs the
      // previous point congested.
      double scale = w.d_sum > 0.0 ? delta * static_cast<double>(m) / w.d_sum : 0.0;
      d_sum = 0.0;
      for (std::size_t a = 0; a < m; ++a) {
        length[a] = std::max(delta / net.cap[a], w.length[a] * scale);
        d_sum += length[a] * net.cap[a];
      }
      c_gk_warm_dual.inc();
    }
  }

  std::vector<Tree> trees(groups.size());
  std::vector<std::uint32_t> path;  // arcs target<-...<-source (reverse order)

  bool done = d_sum >= 1.0;  // true only on a converged exact resume
  // Augmentation budget (McfOptions::max_augmentations). Checked inside
  // the sequential augmentation loop, so the cut point is deterministic at
  // any thread count; 0 disables it.
  const std::uint64_t max_aug = options.max_augmentations;
  bool budget_hit = false;
  while (!done && !budget_hit && d_sum < 1.0 && result.phases < options.max_phases) {
    OBS_SPAN("gk.phase");
    // The per-source shortest-path trees of this phase are independent
    // reads of the phase-start length function — the embarrassingly
    // parallel half of each Garg-Koenemann iteration. They are computed
    // from identical inputs at any thread count, and the augmentation loop
    // below stays sequential across groups, so the FPTAS certificate and
    // every reported number are thread-count-invariant. Groups whose trees
    // go stale while earlier groups route flow are caught by Fleischer's
    // re-pricing rule and recomputed locally, exactly as before.
    exec::parallel_for(groups.size(), [&](std::size_t gi) {
      dijkstra(net, groups[gi].src, length, trees[gi]);
    });
    result.dijkstra_runs += groups.size();

    for (std::size_t gi = 0; gi < groups.size() && !done && !budget_hit; ++gi) {
      const SourceGroup& grp = groups[gi];
      Tree& tree = trees[gi];
      std::vector<double> dist_at_compute = tree.dist;

      for (std::size_t ti = 0; ti < grp.targets.size() && !done && !budget_hit; ++ti) {
        auto [target, demand] = grp.targets[ti];
        if (tree.dist[target] == kInf)
          throw std::invalid_argument("max_concurrent_flow: commodity disconnected");
        double need = demand;
        while (need > 0.0 && !done && !budget_hit) {
          // Walk the tree path and re-price it under current lengths.
          path.clear();
          double cur_len = 0.0;
          double bottleneck = kInf;
          for (NodeId v = target; v != grp.src;) {
            std::uint32_t a = tree.parent_arc[v];
            path.push_back(a);
            cur_len += length[a];
            bottleneck = std::min(bottleneck, net.cap[a]);
            v = arc_tail(g, a);
          }
          if (cur_len > (1.0 + eps) * dist_at_compute[target]) {
            // Stale tree (Fleischer's rule): recompute and retry.
            c_gk_stale.inc();
            dijkstra(net, grp.src, length, tree);
            ++result.dijkstra_runs;
            dist_at_compute = tree.dist;
            continue;
          }
          double f = std::min(need, bottleneck);
          for (std::uint32_t a : path) {
            double old_len = length[a];
            flow[a] += f;
            length[a] = old_len * (1.0 + eps * f / net.cap[a]);
            d_sum += (length[a] - old_len) * net.cap[a];
          }
          routed[gi][ti] += f;
          need -= f;
          ++result.augmentations;
          if (d_sum >= 1.0) done = true;
          if (max_aug != 0 && result.augmentations >= max_aug && !done) {
            budget_hit = true;
            c_gk_budget_stops.inc();
          }
        }
      }
    }
    ++result.phases;
    h_gk_dsum.observe(d_sum);
  }
  // Counter counts phases actually run here; result.phases also carries
  // the inherited ones so resumed and cold solves report the same total.
  c_gk_phases.add(result.phases);
  // `done` is only ever set by the D(l) >= 1 termination test, so leaving
  // the loop without it means max_phases cut the run short.
  result.truncated = !done;
  result.phases += phase_base;

  // Terminal state export for the next sweep point, before the arrays are
  // rescaled/moved below (warm state stores the *raw* primal).
  if (options.export_state != nullptr) {
    McfWarmState& out = *options.export_state;
    out.length = length;
    out.arc_flow = flow;
    out.routed.resize(commodities.size());
    for (std::size_t i = 0; i < commodities.size(); ++i)
      out.routed[i] = routed[slot_of[i].first][slot_of[i].second];
    out.d_sum = d_sum;
    out.phases = result.phases;
    out.converged = done;
    out.exact = false;  // the caller re-asserts instance identity per use
  }

  // Primal bound: rescale by worst congestion.
  double congestion = 0.0;
  for (std::size_t a = 0; a < m; ++a)
    congestion = std::max(congestion, flow[a] / net.cap[a]);
  result.max_congestion = congestion;
  double min_ratio = kInf;
  for (std::size_t gi = 0; gi < groups.size(); ++gi)
    for (std::size_t ti = 0; ti < groups[gi].targets.size(); ++ti)
      min_ratio = std::min(min_ratio, routed[gi][ti] / groups[gi].targets[ti].second);
  result.lambda_lower = congestion > 0.0 ? min_ratio / congestion : 0.0;

  result.arc_flow = std::move(flow);
  if (congestion > 0.0)
    for (double& f : result.arc_flow) f /= congestion;

  // Per-input-commodity routed totals under the same rescaling, for
  // solver certificates (check::certify), via the same slot mapping.
  result.commodity_routed.assign(commodities.size(), 0.0);
  for (std::size_t i = 0; i < commodities.size(); ++i) {
    const auto& [gi, ti] = slot_of[i];
    result.commodity_routed[i] = congestion > 0.0 ? routed[gi][ti] / congestion : 0.0;
  }

  // Dual bound under the final lengths: lambda* <= D(l) / alpha(l).
  // One read-only Dijkstra per source group, fanned out over the pool;
  // per-group alpha partials reduce in group order (deterministic).
  result.lambda_upper = kInf;
  if (options.compute_upper_bound) {
    OBS_SPAN("gk.dual_bound");
    double alpha = exec::parallel_reduce(
        groups.size(), /*grain=*/1, 0.0,
        [&](std::size_t begin, std::size_t end, std::size_t) {
          double part = 0.0;
          Tree local;
          for (std::size_t gi = begin; gi < end; ++gi) {
            dijkstra(net, groups[gi].src, length, local);
            for (auto [target, demand] : groups[gi].targets)
              part += demand * local.dist[target];
          }
          return part;
        },
        [](double acc, double part) { return acc + part; });
    result.dijkstra_runs += groups.size();
    if (alpha > 0.0) result.lambda_upper = d_sum / alpha;
  }
  c_gk_augmentations.add(result.augmentations);
  c_gk_dijkstras.add(result.dijkstra_runs);
  g_gk_lambda_lower.set(result.lambda_lower);
  if (result.lambda_upper != kInf) g_gk_lambda_upper.set(result.lambda_upper);
  return result;
}

}  // namespace flattree::mcf
