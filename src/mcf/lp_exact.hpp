#pragma once
// Exact maximum concurrent flow via the arc-based LP (paper Section 3.1
// methodology, solved with src/lp's simplex).
//
// Intended for small instances only (the variable count is
// commodities x arcs): it anchors unit tests with exact optima and
// cross-validates the Garg-Koenemann FPTAS. Full-scale experiments use
// mcf/garg_koenemann.hpp.

#include <vector>

#include "graph/graph.hpp"
#include "mcf/commodity.hpp"

namespace flattree::mcf {

/// Outcome of the exact LP solve (cross-validates the FPTAS solver).
struct ExactResult {
  bool solved = false;   ///< false on infeasible/iteration limit
  double lambda = 0.0;   ///< exact optimum when solved
};

/// Solves max lambda s.t. each commodity ships lambda * demand, links
/// full-duplex with per-direction capacity. Throws std::invalid_argument
/// on an instance too large (`max_variables` guard) or malformed.
ExactResult max_concurrent_flow_exact(const graph::Graph& g,
                                      const std::vector<Commodity>& commodities,
                                      std::size_t max_variables = 20'000);

}  // namespace flattree::mcf
