#include "mcf/lp_exact.hpp"

#include <stdexcept>

#include "lp/simplex.hpp"

namespace flattree::mcf {

ExactResult max_concurrent_flow_exact(const graph::Graph& g,
                                      const std::vector<Commodity>& commodities,
                                      std::size_t max_variables) {
  if (commodities.empty())
    throw std::invalid_argument("max_concurrent_flow_exact: no commodities");
  const std::size_t links = g.link_count();
  const std::size_t arcs = links * 2;  // arc 2l = a->b, 2l+1 = b->a
  const std::size_t j_count = commodities.size();
  const std::size_t lambda_var = j_count * arcs;
  if (lambda_var + 1 > max_variables)
    throw std::invalid_argument("max_concurrent_flow_exact: instance too large");

  lp::LpProblem problem(lambda_var + 1);
  problem.set_objective(lambda_var, 1.0);

  auto var = [arcs](std::size_t j, std::size_t arc) { return j * arcs + arc; };

  // Capacity: sum_j f[j][arc] <= cap(arc), per direction.
  for (std::size_t l = 0; l < links; ++l) {
    for (int dir = 0; dir < 2; ++dir) {
      std::vector<std::pair<std::size_t, double>> terms;
      terms.reserve(j_count);
      for (std::size_t j = 0; j < j_count; ++j) terms.emplace_back(var(j, 2 * l + dir), 1.0);
      problem.add_row_sparse(terms, lp::RowType::Le, g.link(static_cast<graph::LinkId>(l)).capacity);
    }
  }

  // Conservation: for each commodity and node != src: in - out = rhs,
  // rhs = demand * lambda at dst (moved to LHS), 0 elsewhere. The source
  // row is the negative sum of the others and is omitted.
  for (std::size_t j = 0; j < j_count; ++j) {
    const Commodity& c = commodities[j];
    if (c.src == c.dst)
      throw std::invalid_argument("max_concurrent_flow_exact: src == dst");
    for (graph::NodeId v = 0; v < g.node_count(); ++v) {
      if (v == c.src) continue;
      std::vector<std::pair<std::size_t, double>> terms;
      for (const graph::Arc& arc : g.neighbors(v)) {
        const graph::Link& link = g.link(arc.link);
        // arc 2l flows a->b, so it enters v when v == b.
        std::size_t in_arc = v == link.b ? 2 * arc.link : 2 * arc.link + 1;
        std::size_t out_arc = v == link.b ? 2 * arc.link + 1 : 2 * arc.link;
        terms.emplace_back(var(j, in_arc), 1.0);
        terms.emplace_back(var(j, out_arc), -1.0);
      }
      if (v == c.dst) terms.emplace_back(lambda_var, -c.demand);
      problem.add_row_sparse(terms, lp::RowType::Eq, 0.0);
    }
  }

  lp::LpOptions options;
  options.max_iterations = 200'000;
  lp::LpSolution sol = lp::solve(problem, options);
  ExactResult result;
  result.solved = sol.status == lp::LpStatus::Optimal;
  result.lambda = result.solved ? sol.objective : 0.0;
  return result;
}

}  // namespace flattree::mcf
