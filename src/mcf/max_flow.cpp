#include "mcf/max_flow.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "graph/bfs.hpp"

namespace flattree::mcf {

MaxFlow::MaxFlow(std::size_t nodes) : adjacency_(nodes) {}

std::size_t MaxFlow::add_arc(NodeId u, NodeId v, double capacity) {
  if (u >= adjacency_.size() || v >= adjacency_.size())
    throw std::out_of_range("MaxFlow::add_arc: node out of range");
  if (capacity < 0) throw std::invalid_argument("MaxFlow::add_arc: negative capacity");
  adjacency_[u].push_back({v, capacity, adjacency_[v].size()});
  adjacency_[v].push_back({u, 0.0, adjacency_[u].size() - 1});
  arc_index_.emplace_back(u, adjacency_[u].size() - 1);
  original_capacity_.push_back(capacity);
  return arc_index_.size() - 1;
}

bool MaxFlow::bfs_levels(NodeId s, NodeId t) {
  level_.assign(adjacency_.size(), -1);
  std::vector<NodeId> queue{s};
  level_[s] = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    NodeId u = queue[head];
    for (const Arc& arc : adjacency_[u]) {
      if (arc.capacity > 1e-12 && level_[arc.to] < 0) {
        level_[arc.to] = level_[u] + 1;
        queue.push_back(arc.to);
      }
    }
  }
  return level_[t] >= 0;
}

double MaxFlow::push(NodeId u, NodeId t, double limit) {
  if (u == t) return limit;
  for (std::size_t& i = iter_[u]; i < adjacency_[u].size(); ++i) {
    Arc& arc = adjacency_[u][i];
    if (arc.capacity <= 1e-12 || level_[arc.to] != level_[u] + 1) continue;
    double pushed = push(arc.to, t, std::min(limit, arc.capacity));
    if (pushed > 0) {
      arc.capacity -= pushed;
      adjacency_[arc.to][arc.rev].capacity += pushed;
      return pushed;
    }
  }
  return 0.0;
}

double MaxFlow::solve(NodeId s, NodeId t) {
  if (s == t) throw std::invalid_argument("MaxFlow::solve: s == t");
  // Reset residuals to the original capacities.
  for (std::size_t a = 0; a < arc_index_.size(); ++a) {
    auto [u, slot] = arc_index_[a];
    Arc& fwd = adjacency_[u][slot];
    Arc& rev = adjacency_[fwd.to][fwd.rev];
    fwd.capacity = original_capacity_[a];
    rev.capacity = 0.0;
  }
  double total = 0.0;
  while (bfs_levels(s, t)) {
    iter_.assign(adjacency_.size(), 0);
    while (true) {
      double pushed = push(s, t, std::numeric_limits<double>::infinity());
      if (pushed <= 0) break;
      total += pushed;
    }
  }
  return total;
}

double MaxFlow::arc_flow(std::size_t arc) const {
  auto [u, slot] = arc_index_.at(arc);
  return original_capacity_[arc] - adjacency_[u][slot].capacity;
}

double single_source_concurrent_flow(
    const graph::Graph& g, NodeId src,
    const std::vector<std::pair<NodeId, double>>& targets, double tol) {
  if (targets.empty())
    throw std::invalid_argument("single_source_concurrent_flow: no targets");
  double total_demand = 0.0;
  auto dist = graph::bfs_distances(g, src);
  for (auto [t, d] : targets) {
    if (d <= 0)
      throw std::invalid_argument("single_source_concurrent_flow: non-positive demand");
    if (t == src)
      throw std::invalid_argument("single_source_concurrent_flow: target == source");
    if (dist[t] == graph::kUnreachable)
      throw std::invalid_argument("single_source_concurrent_flow: target unreachable");
    total_demand += d;
  }

  // Feasibility oracle: max-flow to a super-sink with lambda-scaled
  // target arcs equals lambda * total_demand iff lambda is feasible.
  const NodeId sink = static_cast<NodeId>(g.node_count());
  auto feasible_flow = [&](double lambda) {
    MaxFlow mf(g.node_count() + 1);
    for (const auto& link : g.links()) {
      mf.add_arc(link.a, link.b, link.capacity);
      mf.add_arc(link.b, link.a, link.capacity);
    }
    for (auto [t, d] : targets) mf.add_arc(t, sink, lambda * d);
    return mf.solve(src, sink);
  };

  // Upper bound: the source's out-capacity over the total demand.
  double out_cap = 0.0;
  for (const graph::Arc& arc : g.neighbors(src)) out_cap += g.link(arc.link).capacity;
  double hi = out_cap / total_demand;
  if (feasible_flow(hi) >= hi * total_demand * (1.0 - 1e-9)) return hi;
  double lo = 0.0;
  while (hi - lo > tol * std::max(hi, 1e-12)) {
    double mid = 0.5 * (lo + hi);
    if (feasible_flow(mid) >= mid * total_demand * (1.0 - 1e-9))
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

double single_source_concurrent_flow(const graph::Graph& g, const SourceGroup& group,
                                     double tol) {
  return single_source_concurrent_flow(g, group.src, group.targets, tol);
}

}  // namespace flattree::mcf
