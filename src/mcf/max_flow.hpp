#pragma once
// Dinic max-flow and exact single-source concurrent flow.
//
// Broadcast/incast commodities share one endpoint, and single-source
// concurrent flow reduces to max-flow feasibility: attach a super-sink
// behind every target with capacity lambda * demand and binary-search
// lambda. This gives *exact* optima for the paper's Figure 7 workload
// shape at any scale — an independent cross-check on both the
// Garg-Koenemann FPTAS and the simplex LP.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mcf/commodity.hpp"

namespace flattree::mcf {

/// Dinic's algorithm on an explicit directed network.
/// O(V^2 E) worst case; far faster on unit-ish capacities.
class MaxFlow {
 public:
  explicit MaxFlow(std::size_t nodes);

  /// Adds a directed arc u -> v; the residual reverse arc is implicit.
  /// Returns an arc id usable with arc_flow().
  std::size_t add_arc(NodeId u, NodeId v, double capacity);

  /// Computes the max flow s -> t. Resets previous flow. s != t.
  double solve(NodeId s, NodeId t);

  /// Flow routed on a forward arc after solve().
  double arc_flow(std::size_t arc) const;

  std::size_t node_count() const { return adjacency_.size(); }

 private:
  struct Arc {
    NodeId to;
    double capacity;  ///< residual capacity
    std::size_t rev;  ///< index of the reverse arc in adjacency_[to]
  };

  bool bfs_levels(NodeId s, NodeId t);
  double push(NodeId u, NodeId t, double limit);

  std::vector<std::vector<Arc>> adjacency_;
  std::vector<std::pair<NodeId, std::size_t>> arc_index_;  ///< (node, slot)
  std::vector<double> original_capacity_;
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
};

/// Exact single-source concurrent flow: max lambda such that lambda*d_t
/// ships from src to every target simultaneously, links full-duplex with
/// per-direction capacity. Relative precision `tol` (binary search).
/// Throws std::invalid_argument on empty targets or unreachable pairs.
double single_source_concurrent_flow(const graph::Graph& g, NodeId src,
                                     const std::vector<std::pair<NodeId, double>>& targets,
                                     double tol = 1e-6);

/// Convenience for a broadcast SourceGroup.
double single_source_concurrent_flow(const graph::Graph& g, const SourceGroup& group,
                                     double tol = 1e-6);

}  // namespace flattree::mcf
