#include "mcf/commodity.hpp"

#include <algorithm>
#include <unordered_map>

namespace flattree::mcf {

std::vector<Commodity> aggregate_to_switches(const topo::Topology& topo,
                                             const std::vector<ServerDemand>& demands) {
  std::unordered_map<std::uint64_t, double> merged;
  for (const ServerDemand& d : demands) {
    NodeId a = topo.host(d.src);
    NodeId b = topo.host(d.dst);
    if (a == b) continue;  // relaxed server links: free
    merged[(static_cast<std::uint64_t>(a) << 32) | b] += d.demand;
  }
  std::vector<Commodity> out;
  out.reserve(merged.size());
  for (const auto& [key, demand] : merged)
    out.push_back({static_cast<NodeId>(key >> 32), static_cast<NodeId>(key & 0xffffffffu),
                   demand});
  std::sort(out.begin(), out.end(), [](const Commodity& x, const Commodity& y) {
    if (x.src != y.src) return x.src < y.src;
    return x.dst < y.dst;
  });
  return out;
}

std::vector<SourceGroup> group_by_source(const std::vector<Commodity>& commodities) {
  std::unordered_map<NodeId, std::size_t> index;
  std::vector<SourceGroup> groups;
  for (const Commodity& c : commodities) {
    auto [it, inserted] = index.try_emplace(c.src, groups.size());
    if (inserted) {
      groups.emplace_back();
      groups.back().src = c.src;
    }
    SourceGroup& g = groups[it->second];
    g.targets.emplace_back(c.dst, c.demand);
    g.total_demand += c.demand;
  }
  return groups;
}

double total_demand(const std::vector<Commodity>& commodities) {
  double sum = 0.0;
  for (const Commodity& c : commodities) sum += c.demand;
  return sum;
}

}  // namespace flattree::mcf
