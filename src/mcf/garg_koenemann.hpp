#pragma once
// Maximum concurrent multicommodity flow via the Garg-Koenemann framework
// with Fleischer's phase/path-reuse improvements.
//
// Links are full-duplex: each undirected link becomes two opposing arcs of
// the full link capacity (the standard model in DCN throughput studies).
// The solver returns
//   * lambda_lower — a certified feasible value: the routed flow rescaled
//     by the worst observed congestion (always a valid lower bound on the
//     optimum, independent of epsilon), and
//   * lambda_upper — an LP-duality bound D(l)/alpha(l) under the final
//     length function (always a valid upper bound),
// so every answer carries its own optimality certificate. For the FPTAS
// guarantee lambda_lower >= (1-3eps) * optimum, but in practice the
// reported gap is much tighter.
//
// Path reuse: within a phase the solver routes a whole source group along
// one Dijkstra tree and re-walks path lengths incrementally, recomputing
// the tree only when a path's current length exceeds (1+eps) times its
// length at tree-computation time (Fleischer's rule).

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mcf/commodity.hpp"

namespace flattree::mcf {

/// Reusable solver state for warm starts across a sweep (src/inc wraps
/// this in inc::McfWarmCache; most callers never touch it directly).
///
/// Two tiers, selected by `exact`:
///
///   * exact == true — the caller asserts the instance (graph link order,
///     capacities, commodities, epsilon) is *identical* to the run that
///     exported this state. The solver restores lengths, raw flow, and
///     per-commodity routed totals and re-enters its main loop; a
///     converged prior state terminates immediately, so the result is
///     bitwise identical to a cold solve while every prior phase is saved
///     (McfResult::warm_phases_saved, inc.mcf.warm_phases_saved).
///   * exact == false — only the *dual* half is trusted: prior lengths are
///     rescaled back to the cold start's total D(l) = delta*m and clamped
///     to >= delta/cap per arc, the primal state starts from zero, and the
///     solver runs normally. Every invariant of the analysis holds
///     (lengths only ever grow from >= delta/cap, termination at D >= 1),
///     so both bounds stay certified; the prior duals merely steer early
///     phases away from previously congested arcs.
struct McfWarmState {
  std::vector<double> length;     ///< per-arc dual lengths (2 per link)
  std::vector<double> arc_flow;   ///< raw (pre-rescale) routed flow per arc
  std::vector<double> routed;     ///< raw routed total per input commodity
  double d_sum = 0.0;             ///< D(l) at export
  std::uint64_t phases = 0;       ///< phases spent producing this state
  bool converged = false;         ///< prior run reached D(l) >= 1
  bool exact = false;             ///< caller-asserted identical instance

  bool empty() const { return length.empty(); }
};

/// Solver knobs for max_concurrent_flow.
struct McfOptions {
  double epsilon = 0.2;            ///< FPTAS accuracy knob
  bool compute_upper_bound = true; ///< duality bound sweep at termination
  /// Phase cap. When hit before the termination test D(l) >= 1 the run is
  /// *truncated* (see McfResult::truncated): both bounds stay valid —
  /// lambda_lower is the actually-routed flow rescaled by the observed
  /// congestion (primal-feasible by construction), lambda_upper is still
  /// an LP-duality bound — but the FPTAS gap guarantee between them no
  /// longer applies, so the bracket may be arbitrarily loose.
  std::uint64_t max_phases = 1u << 20;
  /// Deadline-style budget alongside max_phases, denominated in
  /// augmentations rather than wall time so truncation points are
  /// bitwise-reproducible at any thread count (the augmentation loop is
  /// sequential and deterministic; a wall-clock deadline would not be).
  /// 0 = unlimited. Hitting the budget mid-phase stops the solve with
  /// McfResult::truncated = true and the same validity caveats as a
  /// max_phases cut.
  std::uint64_t max_augmentations = 0;
  /// Accept commodities whose endpoints are disconnected in `g` instead of
  /// throwing: they are excluded from the solve, listed in
  /// McfResult::unreachable, routed zero flow, and reported through the
  /// demand-weighted McfResult::served_fraction. The returned bracket then
  /// certifies the *reachable sub-instance* (check::certify_served). Warm
  /// start / state export are bypassed when any commodity is actually
  /// unreachable (the per-commodity state no longer lines up).
  bool allow_unreachable = false;
  /// Optional warm start (see McfWarmState). Null = cold start. The state
  /// must have length.size() == 2 * link_count (std::invalid_argument
  /// otherwise); exact resume additionally requires converged state and
  /// matching flow/routed sizes.
  const McfWarmState* warm_start = nullptr;
  /// When non-null, filled with the terminal solver state for the next
  /// sweep point's warm start. Export costs two array copies.
  McfWarmState* export_state = nullptr;
};

/// Solver output: a certified bracket [lambda_lower, lambda_upper] around
/// the optimum plus the flow that witnesses the lower bound.
struct McfResult {
  double lambda_lower = 0.0;  ///< certified feasible concurrent-flow value
  double lambda_upper = 0.0;  ///< duality upper bound (inf if not computed)
  double max_congestion = 0.0;
  std::uint64_t phases = 0;
  std::uint64_t augmentations = 0;
  std::uint64_t dijkstra_runs = 0;
  /// True when max_phases stopped the run before D(l) reached 1. The
  /// bounds above remain individually valid (feasible lower, duality
  /// upper) but carry no (1 - 3*eps) gap promise; callers relying on the
  /// FPTAS guarantee must check this flag (check::certify does).
  bool truncated = false;
  /// Per-arc routed flow after rescaling (arc 2*l = link l a->b, 2*l+1 =
  /// b->a); max_a flow/cap == 1 after rescaling unless no flow was routed.
  std::vector<double> arc_flow;
  /// Flow shipped per input commodity (aligned with the `commodities`
  /// argument), after the same congestion rescaling as arc_flow — so
  /// commodity_routed[i] >= lambda_lower * demand[i] and the divergence of
  /// arc_flow at every node equals the net routed supply. check::certify
  /// verifies both.
  std::vector<double> commodity_routed;
  /// Phases inherited from an exact warm resume instead of being re-run
  /// (0 on cold and dual-seeded solves). Also accumulated into the
  /// inc.mcf.warm_phases_saved counter.
  std::uint64_t warm_phases_saved = 0;
  /// Demand-weighted fraction of the input that was solvable at all:
  /// sum(demand over reachable commodities) / sum(demand). 1.0 unless
  /// McfOptions::allow_unreachable excluded commodities; 0.0 when every
  /// commodity was disconnected (then the rest of the result is the
  /// degenerate zero solve: lambda bounds 0, no phases, zero flow).
  double served_fraction = 1.0;
  /// Indices (into the input `commodities`) excluded as unreachable,
  /// ascending. Empty unless allow_unreachable is set. Their
  /// commodity_routed entries are exactly 0.
  std::vector<std::uint32_t> unreachable;
};

/// Solves max concurrent flow for `commodities` over `g`. Throws
/// std::invalid_argument on empty commodities, unreachable pairs (unless
/// McfOptions::allow_unreachable), or any link with a non-positive/
/// non-finite capacity (zero-capacity links would otherwise poison every
/// length with inf).
McfResult max_concurrent_flow(const graph::Graph& g,
                              const std::vector<Commodity>& commodities,
                              const McfOptions& options = {});

}  // namespace flattree::mcf
