#pragma once
// Maximum concurrent multicommodity flow via the Garg-Koenemann framework
// with Fleischer's phase/path-reuse improvements.
//
// Links are full-duplex: each undirected link becomes two opposing arcs of
// the full link capacity (the standard model in DCN throughput studies).
// The solver returns
//   * lambda_lower — a certified feasible value: the routed flow rescaled
//     by the worst observed congestion (always a valid lower bound on the
//     optimum, independent of epsilon), and
//   * lambda_upper — an LP-duality bound D(l)/alpha(l) under the final
//     length function (always a valid upper bound),
// so every answer carries its own optimality certificate. For the FPTAS
// guarantee lambda_lower >= (1-3eps) * optimum, but in practice the
// reported gap is much tighter.
//
// Path reuse: within a phase the solver routes a whole source group along
// one Dijkstra tree and re-walks path lengths incrementally, recomputing
// the tree only when a path's current length exceeds (1+eps) times its
// length at tree-computation time (Fleischer's rule).

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mcf/commodity.hpp"

namespace flattree::mcf {

struct McfOptions {
  double epsilon = 0.2;            ///< FPTAS accuracy knob
  bool compute_upper_bound = true; ///< duality bound sweep at termination
  /// Phase cap. When hit before the termination test D(l) >= 1 the run is
  /// *truncated* (see McfResult::truncated): both bounds stay valid —
  /// lambda_lower is the actually-routed flow rescaled by the observed
  /// congestion (primal-feasible by construction), lambda_upper is still
  /// an LP-duality bound — but the FPTAS gap guarantee between them no
  /// longer applies, so the bracket may be arbitrarily loose.
  std::uint64_t max_phases = 1u << 20;
};

struct McfResult {
  double lambda_lower = 0.0;  ///< certified feasible concurrent-flow value
  double lambda_upper = 0.0;  ///< duality upper bound (inf if not computed)
  double max_congestion = 0.0;
  std::uint64_t phases = 0;
  std::uint64_t augmentations = 0;
  std::uint64_t dijkstra_runs = 0;
  /// True when max_phases stopped the run before D(l) reached 1. The
  /// bounds above remain individually valid (feasible lower, duality
  /// upper) but carry no (1 - 3*eps) gap promise; callers relying on the
  /// FPTAS guarantee must check this flag (check::certify does).
  bool truncated = false;
  /// Per-arc routed flow after rescaling (arc 2*l = link l a->b, 2*l+1 =
  /// b->a); max_a flow/cap == 1 after rescaling unless no flow was routed.
  std::vector<double> arc_flow;
  /// Flow shipped per input commodity (aligned with the `commodities`
  /// argument), after the same congestion rescaling as arc_flow — so
  /// commodity_routed[i] >= lambda_lower * demand[i] and the divergence of
  /// arc_flow at every node equals the net routed supply. check::certify
  /// verifies both.
  std::vector<double> commodity_routed;
};

/// Solves max concurrent flow for `commodities` over `g`. Throws
/// std::invalid_argument on empty commodities, unreachable pairs, or any
/// link with a non-positive/non-finite capacity (zero-capacity links would
/// otherwise poison every length with inf).
McfResult max_concurrent_flow(const graph::Graph& g,
                              const std::vector<Commodity>& commodities,
                              const McfOptions& options = {});

}  // namespace flattree::mcf
