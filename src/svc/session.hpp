#pragma once
// Per-session service state: one shard of the flattree-svc.v1 request
// space (the "session" envelope field selects a shard).
//
// A session owns a fault::ResilientController over its own physical plant,
// the current traffic-matrix snapshot, and the warm engines that make
// --incremental evaluation cheap without changing a single output byte:
//
//   * inc::DynamicApsp for APL queries — delta-repaired BFS trees,
//     bitwise-equal to cold topo::server_apl_subset;
//   * inc::McfWarmCache (exact-only tier) for throughput queries —
//     resumes of identical instances are bitwise-identical to cold solves.
//
// Mutating executors (build/traffic/fault/convert/expand) are only ever
// called from the service's sequential path. Read-only executors
// (query/what_if) run in two modes: `sequential = true` (batch of one)
// uses the warm engines; `sequential = false` (parallel batch worker)
// evaluates cold and touches no session members beyond const reads —
// both produce the same bytes, so batching never shows in the output.
//
// Error-code families produced here: svc.session.not_built,
// svc.build.bad_params, svc.traffic.bad_demand, svc.fault.bad_event,
// svc.fault.time_regression, svc.convert.in_flight, svc.convert.bad_mode,
// svc.expand.infeasible, svc.expand.in_flight,
// svc.expand.faults_outstanding, svc.design.bad_mix,
// svc.request.bad_field.

#include <cstdint>
#include <memory>
#include <vector>

#include "fault/resilient_controller.hpp"
#include "inc/dynamic_bfs.hpp"
#include "inc/mcf_warm.hpp"
#include "mcf/commodity.hpp"
#include "svc/protocol.hpp"
#include "svc/slo.hpp"

namespace flattree::svc {

/// Per-shard evaluation knobs, shared by every session of a service run.
struct SessionOptions {
  double epsilon = 0.12;     ///< GK epsilon for throughput queries
  bool incremental = false;  ///< warm engines on the sequential path
  SloPolicy slo;
};

/// Deterministic work accounting for one evaluated request (feeds the
/// service's `stats` op; wall-clock never enters these).
struct EvalTally {
  std::uint64_t solves = 0;
  std::uint64_t truncated = 0;  ///< budget-truncated solves
  std::uint64_t certified = 0;  ///< solves whose certificate passed
  std::uint64_t fault_events = 0;
};

/// One state shard: a resilient controller, its traffic snapshot, and
/// warm engines (DynamicApsp + McfWarmCache) whose answers are bitwise
/// equal to cold evaluation. Ops arrive pre-parsed as Requests.
class Session {
 public:
  explicit Session(SessionOptions opt) : opt_(opt) {}

  bool built() const { return ctl_ != nullptr; }
  /// The live controller (only valid when built()).
  fault::ResilientController& controller() { return *ctl_; }
  const fault::ResilientController& controller() const { return *ctl_; }

  // Mutating executors — sequential only. Each returns true with `payload`
  // populated, or false with `err` filled and *no state changed* (fault
  // injection dry-runs the whole event batch before applying any of it).
  bool exec_build(const Request& req, obs::JsonValue& payload, RequestError& err);
  bool exec_traffic(const Request& req, obs::JsonValue& payload, RequestError& err);
  bool exec_fault(const Request& req, obs::JsonValue& payload, EvalTally& tally,
                  RequestError& err);
  bool exec_convert(const Request& req, obs::JsonValue& payload, RequestError& err);
  bool exec_expand(const Request& req, obs::JsonValue& payload, RequestError& err);

  // Read-only executors — see the header comment for the two modes.
  bool exec_query(const Request& req, bool sequential, obs::JsonValue& payload,
                  EvalTally& tally, RequestError& err);
  bool exec_what_if(const Request& req, bool sequential, obs::JsonValue& payload,
                    EvalTally& tally, RequestError& err);
  /// Conversion-plan search (design::search) over the session's *clean*
  /// plant — outstanding faults are not modeled; the search plans the
  /// layout the operator would convert the healthy fabric into. Every
  /// engine it needs is constructed locally per call, so batch-of-1 and
  /// batch-of-N evaluations are trivially byte-identical and no
  /// `sequential` flag is needed. deadline_ms caps the iteration count
  /// through SloPolicy (svc.design.* error codes).
  bool exec_design(const Request& req, obs::JsonValue& payload, EvalTally& tally,
                   RequestError& err);

 private:
  bool require_built(RequestError& err) const;
  bool parse_target_modes(const Request& req, std::vector<core::Mode>& modes,
                          RequestError& err) const;
  /// Appends the shared degraded-state metric block (down counts,
  /// stranded, alive, APL, and — when a traffic snapshot is installed and
  /// the request didn't opt out with "lambda": false — the budgeted,
  /// certified throughput fields).
  void metric_block(const Request& req, const fault::DegradeResult& d, bool sequential,
                    obs::JsonValue& payload, EvalTally& tally);

  SessionOptions opt_;
  std::unique_ptr<fault::ResilientController> ctl_;
  std::vector<mcf::ServerDemand> demands_;
  double total_demand_ = 0.0;
  std::unique_ptr<inc::DynamicApsp> apsp_;       ///< sequential + incremental only
  std::unique_ptr<inc::McfWarmCache> warm_;      ///< exact-only; same restriction
};

}  // namespace flattree::svc
