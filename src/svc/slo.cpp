#include "svc/slo.hpp"

#include <cmath>

#include "check/certify.hpp"
#include "obs/metrics.hpp"

namespace flattree::svc {

namespace {

obs::Counter c_budgeted("svc.slo.budgeted_solves");
obs::Counter c_truncated("svc.slo.truncated_solves");

}  // namespace

std::uint64_t budget_augmentations(const SloPolicy& policy, double deadline_ms) {
  if (deadline_ms <= 0.0) return 0;  // no deadline: unlimited
  double raw = deadline_ms * policy.augmentations_per_ms;
  // Saturate instead of overflowing for absurd deadlines.
  if (raw >= 9.0e18) return std::uint64_t{9000000000000000000ull};
  std::uint64_t budget = static_cast<std::uint64_t>(raw);
  return budget < policy.min_augmentations ? policy.min_augmentations : budget;
}

std::uint64_t budget_iterations(const SloPolicy& policy, double deadline_ms) {
  if (deadline_ms <= 0.0) return 0;  // no deadline: unlimited
  double raw = deadline_ms * policy.design_iterations_per_ms;
  if (raw >= 9.0e18) return std::uint64_t{9000000000000000000ull};
  std::uint64_t budget = static_cast<std::uint64_t>(raw);
  return budget < policy.min_design_iterations ? policy.min_design_iterations
                                               : budget;
}

SloSolve solve_with_budget(const graph::Graph& g,
                           const std::vector<mcf::Commodity>& commodities,
                           double epsilon, std::uint64_t budget,
                           inc::McfWarmCache* warm) {
  SloSolve out;
  out.budget = budget;
  if (commodities.empty()) {
    // Degenerate zero solve: nothing to route, vacuously certified.
    out.certified = true;
    return out;
  }

  mcf::McfOptions opt;
  opt.epsilon = epsilon;
  opt.allow_unreachable = true;
  opt.compute_upper_bound = true;
  opt.max_augmentations = budget;
  out.result = warm != nullptr ? warm->solve(g, commodities, opt)
                               : mcf::max_concurrent_flow(g, commodities, opt);

  check::CertifyOptions copt;
  copt.epsilon = epsilon;
  out.certified = check::certify_served(g, commodities, out.result, copt).ok();

  if (budget > 0) c_budgeted.inc();
  if (out.result.truncated) c_truncated.inc();
  return out;
}

}  // namespace flattree::svc
