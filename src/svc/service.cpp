#include "svc/service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <fstream>
#include <istream>
#include <iterator>
#include <ostream>

#include "check/snapshot_check.hpp"
#include "exec/parallel_for.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace flattree::svc {

namespace {

obs::Counter c_requests("svc.requests");
obs::Counter c_rejected("svc.rejected");
obs::Counter c_batches("svc.batches");
obs::Counter c_shed("svc.overload.shed");
obs::Counter c_snapshots("svc.durable.snapshots");
obs::Counter c_rec_fast("svc.durable.recover_fast");
obs::Counter c_rec_reexec("svc.durable.recover_reexec");

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// True for the state-changing session ops that enter replay histories.
bool session_mutating(Op op) {
  switch (op) {
    case Op::Build:
    case Op::Traffic:
    case Op::Fault:
    case Op::Convert:
    case Op::Expand:
      return true;
    default:
      return false;
  }
}

void bump_shed(ServiceStats& st, const std::string& gap_class) {
  if (gap_class == "oversize")
    ++st.shed_oversize;
  else if (gap_class == "queue")
    ++st.shed_queue;
  else if (gap_class == "deadline")
    ++st.shed_deadline;
}

}  // namespace

Service::Service(ServiceOptions opt) : opt_(std::move(opt)) {
  if (opt_.max_batch == 0) opt_.max_batch = 1;
  sessions_.resize(kMaxSessions);
  histories_.resize(kMaxSessions);
  if (opt_.journal != nullptr)
    writer_ = std::make_unique<durable::JournalWriter>(*opt_.journal,
                                                       opt_.journal_resume);
}

void Service::fill_stats_payload(obs::JsonValue& payload) const {
  put(payload, "lines", jint(static_cast<std::int64_t>(stats_.lines)));
  put(payload, "accepted", jint(static_cast<std::int64_t>(stats_.accepted)));
  put(payload, "rejected", jint(static_cast<std::int64_t>(stats_.rejected)));
  obs::JsonValue ops = obs::JsonValue::make_object();
  for (int i = 0; i < static_cast<int>(kOpCount); ++i)
    if (stats_.accepted_by_op[i] > 0)
      put(ops, to_string(static_cast<Op>(i)),
          jint(static_cast<std::int64_t>(stats_.accepted_by_op[i])));
  put(payload, "ops", std::move(ops));
  put(payload, "fault_events", jint(static_cast<std::int64_t>(stats_.fault_events)));
  put(payload, "solves", jint(static_cast<std::int64_t>(stats_.solves)));
  put(payload, "truncated_solves",
      jint(static_cast<std::int64_t>(stats_.truncated_solves)));
  put(payload, "certified_solves",
      jint(static_cast<std::int64_t>(stats_.certified_solves)));
  put(payload, "batches", jint(static_cast<std::int64_t>(stats_.batches)));
  put(payload, "max_batch", jint(static_cast<std::int64_t>(stats_.max_batch)));
  put(payload, "journal_lines", jint(static_cast<std::int64_t>(stats_.journal_lines)));
  put(payload, "shed_oversize", jint(static_cast<std::int64_t>(stats_.shed_oversize)));
  put(payload, "shed_queue", jint(static_cast<std::int64_t>(stats_.shed_queue)));
  put(payload, "shed_deadline",
      jint(static_cast<std::int64_t>(stats_.shed_deadline)));
}

Service::EvalResult Service::eval(const Request& req, bool sequential) {
  OBS_SPAN("svc.eval");
  EvalResult r;
  obs::JsonValue payload = obs::JsonValue::make_object();
  RequestError err;
  const double t0 = now_ms();

  try {
    switch (req.op) {
      case Op::Hello:
        // Protocol constants only: anything that varies with run knobs that
        // the byte-identity matrix toggles (--incremental, --threads, obs)
        // must stay out of the response stream.
        put(payload, "proto", jstr("flattree-svc.v1"));
        put(payload, "max_batch", jint(static_cast<std::int64_t>(opt_.max_batch)));
        put(payload, "sessions", jint(kMaxSessions));
        r.ok = true;
        break;
      case Op::Stats:
        fill_stats_payload(payload);
        r.ok = true;
        break;
      case Op::Manifest: {
        std::string path;
        bool present = false;
        if (!req_string(req.body, "path", path, present, err)) break;
        if (!present) {
          err = RequestError{"svc.request.bad_field", "field 'path' (string) is required"};
          break;
        }
        // The side effect depends on observability; the response must not
        // (obs on/off byte-identity), so failures only warn on stderr.
        if (opt_.manifest_session != nullptr && obs::enabled()) {
          std::ofstream f(path);
          if (f) {
            f << opt_.manifest_session->manifest_json() << '\n';
          } else {
            std::fprintf(stderr, "svc: cannot write manifest to '%s'\n", path.c_str());
          }
        }
        put(payload, "path", jstr(path));
        r.ok = true;
        break;
      }
      case Op::Build:
      case Op::Traffic:
      case Op::Fault:
      case Op::Convert:
      case Op::Expand: {
        // Mutating ops run on the sequential path only; create the shard
        // lazily (exec_* other than build still require a built plant).
        if (sessions_[req.session] == nullptr) {
          SessionOptions sopt;
          sopt.epsilon = opt_.epsilon;
          sopt.incremental = opt_.incremental;
          sopt.slo = opt_.slo;
          sessions_[req.session] = std::make_unique<Session>(sopt);
        }
        Session& s = *sessions_[req.session];
        switch (req.op) {
          case Op::Build:
            r.ok = s.exec_build(req, payload, err);
            break;
          case Op::Traffic:
            r.ok = s.exec_traffic(req, payload, err);
            break;
          case Op::Fault:
            r.ok = s.exec_fault(req, payload, r.tally, err);
            break;
          case Op::Convert:
            r.ok = s.exec_convert(req, payload, err);
            break;
          default:
            r.ok = s.exec_expand(req, payload, err);
            break;
        }
        if (r.ok && opt_.selfcheck && req.op != Op::Traffic) {
          check::Report report = s.controller().self_check();
          if (!report.ok()) {
            violations_ += report.violations.size();
            std::string text = report.to_string();
            std::fprintf(stderr, "svc selfcheck[seq %llu]: %zu violation(s)\n%s\n",
                         static_cast<unsigned long long>(req.seq),
                         report.violations.size(), text.c_str());
          }
        }
        break;
      }
      case Op::Query:
      case Op::WhatIf:
      case Op::Design: {
        Session* s = sessions_[req.session].get();
        if (s == nullptr || !s->built()) {
          err = RequestError{"svc.session.not_built",
                             "session has no plant; send a 'build' request first"};
          break;
        }
        // Design builds every engine it needs locally per call, so it has
        // no sequential/parallel split (batch layouts are trivially
        // byte-identical).
        r.ok = req.op == Op::Query
                   ? s->exec_query(req, sequential, payload, r.tally, err)
               : req.op == Op::WhatIf
                   ? s->exec_what_if(req, sequential, payload, r.tally, err)
                   : s->exec_design(req, payload, r.tally, err);
        break;
      }
    }
  } catch (const std::exception& e) {
    r.ok = false;
    err = RequestError{"svc.internal", e.what()};
  }

  r.wall_ms = now_ms() - t0;
  r.response = r.ok ? render_response(req, payload) : render_error(req, err);
  return r;
}

void Service::capture_history(const Request& req) {
  if (!session_mutating(req.op)) return;
  // A successful build resets the shard, so everything before it is
  // unreachable state: compact the history down to this build.
  if (req.op == Op::Build) histories_[req.session].clear();
  durable::SnapshotRecord rec;
  rec.op = to_string(req.op);
  rec.seq = req.seq;
  rec.canonical = req.canonical;
  histories_[req.session].push_back(std::move(rec));
}

void Service::emit(std::ostream& out, const Request& req, EvalResult&& r) {
  out << r.response << '\n';
  if (r.ok) {
    ++stats_.accepted;
    ++stats_.accepted_by_op[static_cast<int>(req.op)];
    stats_.fault_events += r.tally.fault_events;
    stats_.solves += r.tally.solves;
    stats_.truncated_solves += r.tally.truncated;
    stats_.certified_solves += r.tally.certified;
    if (writer_) {
      writer_->append_record(req.seq, req.canonical);
      durable::JournalTally t;
      t.solves = r.tally.solves;
      t.truncated = r.tally.truncated;
      t.certified = r.tally.certified;
      t.fault_events = r.tally.fault_events;
      writer_->add_tally(t);
      ++stats_.journal_lines;
    }
    capture_history(req);
  } else {
    ++stats_.rejected;
    if (writer_) writer_->append_gap(req.seq, "reject");
    if (obs::enabled()) c_rejected.inc();
  }
  if (obs::enabled()) c_requests.inc();
  if (opt_.latency_hook) opt_.latency_hook(req, r.ok, r.wall_ms);
}

void Service::flush(std::vector<PendingReq>& pending, std::ostream& out) {
  if (pending.empty()) return;

  std::vector<std::size_t> live;
  live.reserve(pending.size());
  for (std::size_t i = 0; i < pending.size(); ++i)
    if (!pending[i].shed) live.push_back(i);

  std::vector<EvalResult> results(pending.size());
  if (live.size() == 1) {
    results[live[0]] = eval(pending[live[0]].req, /*sequential=*/true);
  } else if (live.size() > 1) {
    // Read-only fan-out: every worker evaluates cold (bitwise-equal to the
    // warm sequential path), responses land in per-index slots and are
    // emitted in input order below.
    exec::parallel_for(live.size(), [&](std::size_t i) {
      results[live[i]] = eval(pending[live[i]].req, /*sequential=*/false);
    });
  }

  // Batch accounting counts *accepted* requests, so recovery can rebuild
  // it from the journal's record frames.
  std::uint64_t accepted_here = 0;
  for (std::size_t i : live)
    if (results[i].ok) ++accepted_here;
  if (accepted_here > 0) {
    ++stats_.batches;
    if (accepted_here > stats_.max_batch) stats_.max_batch = accepted_here;
    if (obs::enabled()) c_batches.inc();
  }

  const std::uint64_t last_seq = pending.back().req.seq;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    PendingReq& p = pending[i];
    if (p.shed) {
      out << render_error(p.req, p.err) << '\n';
      ++stats_.rejected;
      bump_shed(stats_, p.gap_class);
      if (writer_) writer_->append_gap(p.req.seq, p.gap_class);
      if (obs::enabled()) {
        c_requests.inc();
        c_rejected.inc();
        c_shed.inc();
      }
      if (opt_.latency_hook) opt_.latency_hook(p.req, false, 0.0);
    } else {
      emit(out, p.req, std::move(results[i]));
    }
  }
  pending.clear();
  commit_group(last_seq);
}

void Service::commit_group(std::uint64_t last_seq) {
  if (writer_) writer_->commit();
  ++groups_committed_;
  last_committed_seq_ = last_seq;
  maybe_snapshot();
}

void Service::gap_and_seal(std::uint64_t seq, const std::string& gap_class) {
  if (writer_) writer_->append_gap(seq, gap_class);
  commit_group(seq);
}

void Service::maybe_snapshot() {
  if (!opt_.snapshot_sink || opt_.snapshot_every == 0) return;
  if (groups_committed_ % opt_.snapshot_every != 0) return;
  // Only snapshot at safe points: every processed line is durable, so a
  // recovery from this snapshot resumes exactly after stats.lines. When a
  // cadence tick lands on an unsafe commit (the flush forced by a boundary
  // whose own line is not yet committed), it is skipped — deterministically,
  // so recovered and uninterrupted runs still snapshot at the same points.
  if (stats_.lines != last_committed_seq_) return;
  durable::ServiceSnapshot snap = snapshot_state();
  std::string bytes = durable::encode_snapshot(snap);
  if (opt_.selfcheck) {
    check::Report rep = check::validate_snapshot(snap);
    durable::ServiceSnapshot back;
    durable::SnapshotError serr;
    if (!durable::decode_snapshot(bytes, back, serr))
      rep.add("snapshot.roundtrip", "decode of a fresh snapshot failed: " + serr.code);
    else if (durable::encode_snapshot(back) != bytes)
      rep.add("snapshot.roundtrip", "encode(decode(s)) != s");
    if (!rep.ok()) {
      violations_ += rep.violations.size();
      std::string text = rep.to_string();
      std::fprintf(stderr, "svc snapshot selfcheck[line %llu]: %zu violation(s)\n%s\n",
                   static_cast<unsigned long long>(stats_.lines),
                   rep.violations.size(), text.c_str());
    }
  }
  opt_.snapshot_sink(bytes);
  if (obs::enabled()) c_snapshots.inc();
}

durable::ServiceSnapshot Service::snapshot_state() const {
  durable::ServiceSnapshot s;
  durable::SnapshotStats& st = s.stats;
  st.lines = stats_.lines;
  st.accepted = stats_.accepted;
  st.rejected = stats_.rejected;
  st.fault_events = stats_.fault_events;
  st.solves = stats_.solves;
  st.truncated_solves = stats_.truncated_solves;
  st.certified_solves = stats_.certified_solves;
  st.batches = stats_.batches;
  st.max_batch = stats_.max_batch;
  st.journal_lines = stats_.journal_lines;
  st.shed_oversize = stats_.shed_oversize;
  st.shed_queue = stats_.shed_queue;
  st.shed_deadline = stats_.shed_deadline;
  for (std::size_t i = 0; i < kOpCount; ++i) st.by_op[i] = stats_.accepted_by_op[i];
  s.groups_committed = groups_committed_;
  for (std::uint32_t id = 0; id < kMaxSessions; ++id) {
    if (histories_[id].empty()) continue;
    durable::SnapshotSession sess;
    sess.id = id;
    sess.records = histories_[id];
    s.sessions.push_back(std::move(sess));
  }
  return s;
}

void Service::process_line(std::string line, std::ostream& out,
                           std::vector<PendingReq>& pending) {
  const std::uint64_t seq = ++stats_.lines;
  if (!line.empty() && line.back() == '\r') line.pop_back();

  if (opt_.max_line_bytes != 0 && line.size() > opt_.max_line_bytes) {
    // Shed before parsing: the cap exists so a hostile line cannot make the
    // parser do work proportional to its length.
    flush(pending, out);
    RequestError err{"svc.overload.line_too_long",
                     "request line of " + std::to_string(line.size()) +
                         " bytes exceeds the " +
                         std::to_string(opt_.max_line_bytes) + "-byte cap"};
    out << render_line_error(seq, err) << '\n';
    ++stats_.rejected;
    ++stats_.shed_oversize;
    if (obs::enabled()) {
      c_requests.inc();
      c_rejected.inc();
      c_shed.inc();
    }
    gap_and_seal(seq, "oversize");
    return;
  }

  Request req;
  RequestError err;
  if (!parse_request(line, seq, req, err)) {
    // A rejected line is a batch boundary so the error response keeps
    // its place in the stream.
    flush(pending, out);
    out << render_line_error(seq, err) << '\n';
    ++stats_.rejected;
    if (obs::enabled()) {
      c_requests.inc();
      c_rejected.inc();
    }
    gap_and_seal(seq, "reject");
    return;
  }

  if (read_only(req.op)) {
    PendingReq p;
    p.req = std::move(req);
    if (opt_.max_queued != 0) {
      // Admission control: depth = live queued requests for this shard.
      std::size_t depth = 0;
      for (const PendingReq& q : pending)
        if (!q.shed && q.req.session == p.req.session) ++depth;
      if (depth >= opt_.max_queued) {
        p.shed = true;
        p.gap_class = "queue";
        p.err = RequestError{
            "svc.overload.queue_full",
            "session " + std::to_string(p.req.session) + " already has " +
                std::to_string(depth) + " queued request(s) (cap " +
                std::to_string(opt_.max_queued) + ")"};
      } else if (p.req.deadline_ms > 0.0) {
        // Deterministic deadline floor: each queued request ahead costs at
        // least the minimum augmentation budget at the policy rate.
        const double floor_ms =
            static_cast<double>(depth) *
            (static_cast<double>(opt_.slo.min_augmentations) /
             opt_.slo.augmentations_per_ms);
        if (p.req.deadline_ms < floor_ms) {
          p.shed = true;
          p.gap_class = "deadline";
          p.err = RequestError{
              "svc.overload.deadline",
              "deadline_ms below the deterministic queue floor for " +
                  std::to_string(depth) + " queued request(s)"};
        }
      }
    }
    pending.push_back(std::move(p));
    if (pending.size() >= opt_.max_batch) flush(pending, out);
  } else {
    flush(pending, out);
    const std::uint64_t mseq = req.seq;
    emit(out, req, eval(req, /*sequential=*/true));
    commit_group(mseq);
  }
}

void Service::run(std::istream& in, std::ostream& out) {
  OBS_SPAN("svc.run");
  std::string line;
  std::vector<PendingReq> pending;
  pending.reserve(opt_.max_batch);
  bool first = true;

  while (std::getline(in, line)) {
    if (first) {
      first = false;
      std::string probe = line;
      if (!probe.empty() && probe.back() == '\r') probe.pop_back();
      if (probe == durable::kJournalHeaderV2) {
        run_journal_script(in, out);
        return;
      }
    }
    process_line(std::move(line), out, pending);
  }
  flush(pending, out);
}

void Service::run_journal_script(std::istream& in, std::ostream& out) {
  std::string rest((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::string bytes = std::string(durable::kJournalHeaderV2) + '\n' + rest;
  durable::JournalContents jc;
  durable::JournalError jerr;
  if (!durable::read_journal(bytes, jc, jerr)) {
    RequestError err{jerr.code, jerr.message + " (record " +
                                    std::to_string(jerr.record) + ")"};
    out << render_line_error(0, err) << '\n';
    ++stats_.rejected;
    if (obs::enabled()) {
      c_requests.inc();
      c_rejected.inc();
    }
    return;
  }

  for (const durable::JournalGroup& g : jc.groups) {
    if (g.entries.empty()) continue;
    // Parse every record up front with its original seq; gaps re-journal
    // and count but emit no response line (their original responses were
    // errors and are not reconstructible from a content-free marker).
    std::vector<Request> reqs(g.entries.size());
    std::vector<std::size_t> live;
    std::uint64_t last_seq = stats_.lines;
    bool any_read_only = false;
    bool parse_ok = true;
    for (std::size_t i = 0; i < g.entries.size(); ++i) {
      const durable::JournalEntry& e = g.entries[i];
      if (e.seq > last_seq) last_seq = e.seq;
      if (!e.is_record) continue;
      RequestError rerr;
      if (!parse_request(e.canonical, e.seq, reqs[i], rerr)) {
        RequestError err{"svc.journal.bad_canonical",
                         "journaled record at seq " + std::to_string(e.seq) +
                             " fails parse_request: " + rerr.code};
        out << render_line_error(e.seq, err) << '\n';
        ++stats_.rejected;
        if (obs::enabled()) {
          c_requests.inc();
          c_rejected.inc();
        }
        parse_ok = false;
        break;
      }
      if (read_only(reqs[i].op)) any_read_only = true;
      live.push_back(i);
    }
    if (!parse_ok) return;
    stats_.lines = last_seq;

    // Re-evaluate with the original batch layout: a lone record goes warm,
    // a multi-record read-only group fans out cold — bitwise equal either
    // way, and the re-journaled frames match the input byte for byte.
    std::vector<EvalResult> results(g.entries.size());
    if (live.size() == 1) {
      results[live[0]] = eval(reqs[live[0]], /*sequential=*/true);
    } else if (live.size() > 1) {
      exec::parallel_for(live.size(), [&](std::size_t i) {
        results[live[i]] = eval(reqs[live[i]], /*sequential=*/false);
      });
    }

    if (any_read_only) {
      std::uint64_t accepted_here = 0;
      for (std::size_t i : live)
        if (results[i].ok) ++accepted_here;
      if (accepted_here > 0) {
        ++stats_.batches;
        if (accepted_here > stats_.max_batch) stats_.max_batch = accepted_here;
        if (obs::enabled()) c_batches.inc();
      }
    }

    for (std::size_t i = 0; i < g.entries.size(); ++i) {
      const durable::JournalEntry& e = g.entries[i];
      if (e.is_record) {
        emit(out, reqs[i], std::move(results[i]));
      } else {
        ++stats_.rejected;
        bump_shed(stats_, e.gap_class);
        if (writer_) writer_->append_gap(e.seq, e.gap_class);
        if (obs::enabled()) {
          c_requests.inc();
          c_rejected.inc();
        }
      }
    }
    commit_group(last_seq);
  }
}

bool Service::replay_group_recover(const durable::JournalGroup& g,
                                   RecoverStats& rs, std::string& error) {
  std::uint64_t last_seq = stats_.lines;
  std::uint64_t ro_records = 0;
  bool reexecuted = false;
  for (const durable::JournalEntry& e : g.entries) {
    if (e.seq > last_seq) last_seq = e.seq;
    if (!e.is_record) {
      ++stats_.rejected;
      bump_shed(stats_, e.gap_class);
      continue;
    }
    Request req;
    RequestError rerr;
    if (!parse_request(e.canonical, e.seq, req, rerr)) {
      error = "svc.recover.replay_failed: journaled record at seq " +
              std::to_string(e.seq) + " fails parse_request: " + rerr.code;
      return false;
    }
    ++rs.records;
    ++stats_.journal_lines;
    if (session_mutating(req.op)) {
      EvalResult r = eval(req, /*sequential=*/true);
      if (!r.ok) {
        error = "svc.recover.replay_failed: journaled " +
                std::string(to_string(req.op)) + " at seq " +
                std::to_string(e.seq) + " re-rejected: " + r.response;
        return false;
      }
      reexecuted = true;
      if (!g.tally_known) {
        stats_.fault_events += r.tally.fault_events;
        stats_.solves += r.tally.solves;
        stats_.truncated_solves += r.tally.truncated;
        stats_.certified_solves += r.tally.certified;
      }
      capture_history(req);
    } else if (req.op == Op::Stats || req.op == Op::Manifest) {
      // Count-only: no state to rebuild, and the manifest side effect is
      // not replayed (the file already reflects the original run).
    } else {
      // Read-only: fast-forward from the frame tally when known,
      // re-evaluate (response discarded; tallies recovered) when not.
      ++ro_records;
      if (!g.tally_known) {
        EvalResult r = eval(req, /*sequential=*/true);
        if (!r.ok) {
          error = "svc.recover.replay_failed: journaled " +
                  std::string(to_string(req.op)) + " at seq " +
                  std::to_string(e.seq) + " re-rejected: " + r.response;
          return false;
        }
        reexecuted = true;
        stats_.fault_events += r.tally.fault_events;
        stats_.solves += r.tally.solves;
        stats_.truncated_solves += r.tally.truncated;
        stats_.certified_solves += r.tally.certified;
      }
    }
    ++stats_.accepted;
    ++stats_.accepted_by_op[static_cast<int>(req.op)];
  }
  if (g.tally_known) {
    stats_.fault_events += g.tally.fault_events;
    stats_.solves += g.tally.solves;
    stats_.truncated_solves += g.tally.truncated;
    stats_.certified_solves += g.tally.certified;
  }
  if (ro_records > 0) {
    ++stats_.batches;
    if (ro_records > stats_.max_batch) stats_.max_batch = ro_records;
  }
  stats_.lines = last_seq;
  ++groups_committed_;
  last_committed_seq_ = last_seq;
  if (reexecuted) {
    ++rs.groups_reexec;
    if (obs::enabled()) c_rec_reexec.inc();
  } else {
    ++rs.groups_fast;
    if (obs::enabled()) c_rec_fast.inc();
  }
  return true;
}

bool Service::recover(const durable::ServiceSnapshot* snap,
                      const durable::JournalContents& journal, RecoverStats& rs,
                      std::string& error) {
  OBS_SPAN("svc.recover");
  rs = RecoverStats{};
  std::uint64_t snap_lines = 0;

  if (snap != nullptr) {
    check::Report rep = check::validate_snapshot(*snap);
    if (!rep.ok()) {
      error = "svc.recover.bad_snapshot: " + rep.violations[0].code + ": " +
              rep.violations[0].message;
      return false;
    }
    // Command-sourcing: rebuild each shard by re-executing its mutating
    // history through the normal eval path (bitwise-equal state), then
    // restore the counters verbatim from the snapshot.
    for (const durable::SnapshotSession& sess : snap->sessions) {
      for (const durable::SnapshotRecord& rec : sess.records) {
        Request req;
        RequestError rerr;
        if (!parse_request(rec.canonical, rec.seq, req, rerr)) {
          error = "svc.recover.replay_failed: snapshot record at seq " +
                  std::to_string(rec.seq) + " fails parse_request: " + rerr.code;
          return false;
        }
        EvalResult r = eval(req, /*sequential=*/true);
        if (!r.ok) {
          error = "svc.recover.replay_failed: snapshot " + rec.op +
                  " at seq " + std::to_string(rec.seq) +
                  " re-rejected: " + r.response;
          return false;
        }
      }
      histories_[sess.id] = sess.records;
    }
    stats_ = ServiceStats{};
    stats_.lines = snap->stats.lines;
    stats_.accepted = snap->stats.accepted;
    stats_.rejected = snap->stats.rejected;
    stats_.fault_events = snap->stats.fault_events;
    stats_.solves = snap->stats.solves;
    stats_.truncated_solves = snap->stats.truncated_solves;
    stats_.certified_solves = snap->stats.certified_solves;
    stats_.batches = snap->stats.batches;
    stats_.max_batch = snap->stats.max_batch;
    stats_.journal_lines = snap->stats.journal_lines;
    stats_.shed_oversize = snap->stats.shed_oversize;
    stats_.shed_queue = snap->stats.shed_queue;
    stats_.shed_deadline = snap->stats.shed_deadline;
    for (std::size_t i = 0; i < kOpCount; ++i)
      stats_.accepted_by_op[i] = snap->stats.by_op[i];
    groups_committed_ = snap->groups_committed;
    last_committed_seq_ = snap->stats.lines;
    snap_lines = snap->stats.lines;
  }

  for (const durable::JournalGroup& g : journal.groups) {
    if (g.entries.empty()) continue;
    std::uint64_t first = g.entries.front().seq;
    std::uint64_t last = first;
    for (const durable::JournalEntry& e : g.entries) {
      if (e.seq < first) first = e.seq;
      if (e.seq > last) last = e.seq;
    }
    if (last <= snap_lines) continue;  // already folded into the snapshot
    if (first <= snap_lines) {
      error = "svc.recover.misaligned: journal group spanning seqs " +
              std::to_string(first) + ".." + std::to_string(last) +
              " straddles the snapshot at line " + std::to_string(snap_lines);
      return false;
    }
    if (!replay_group_recover(g, rs, error)) return false;
  }
  rs.resume_seq = stats_.lines;
  return true;
}

}  // namespace flattree::svc
