#include "svc/service.hpp"

#include <chrono>
#include <cstdio>
#include <exception>
#include <fstream>
#include <istream>
#include <ostream>

#include "exec/parallel_for.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace flattree::svc {

namespace {

obs::Counter c_requests("svc.requests");
obs::Counter c_rejected("svc.rejected");
obs::Counter c_batches("svc.batches");

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Service::Service(ServiceOptions opt) : opt_(std::move(opt)) {
  if (opt_.max_batch == 0) opt_.max_batch = 1;
  sessions_.resize(kMaxSessions);
}

void Service::fill_stats_payload(obs::JsonValue& payload) const {
  put(payload, "lines", jint(static_cast<std::int64_t>(stats_.lines)));
  put(payload, "accepted", jint(static_cast<std::int64_t>(stats_.accepted)));
  put(payload, "rejected", jint(static_cast<std::int64_t>(stats_.rejected)));
  obs::JsonValue ops = obs::JsonValue::make_object();
  for (int i = 0; i < static_cast<int>(kOpCount); ++i)
    if (stats_.accepted_by_op[i] > 0)
      put(ops, to_string(static_cast<Op>(i)),
          jint(static_cast<std::int64_t>(stats_.accepted_by_op[i])));
  put(payload, "ops", std::move(ops));
  put(payload, "fault_events", jint(static_cast<std::int64_t>(stats_.fault_events)));
  put(payload, "solves", jint(static_cast<std::int64_t>(stats_.solves)));
  put(payload, "truncated_solves",
      jint(static_cast<std::int64_t>(stats_.truncated_solves)));
  put(payload, "certified_solves",
      jint(static_cast<std::int64_t>(stats_.certified_solves)));
  put(payload, "batches", jint(static_cast<std::int64_t>(stats_.batches)));
  put(payload, "max_batch", jint(static_cast<std::int64_t>(stats_.max_batch)));
  put(payload, "journal_lines", jint(static_cast<std::int64_t>(stats_.journal_lines)));
}

Service::EvalResult Service::eval(const Request& req, bool sequential) {
  OBS_SPAN("svc.eval");
  EvalResult r;
  obs::JsonValue payload = obs::JsonValue::make_object();
  RequestError err;
  const double t0 = now_ms();

  try {
    switch (req.op) {
      case Op::Hello:
        // Protocol constants only: anything that varies with run knobs that
        // the byte-identity matrix toggles (--incremental, --threads, obs)
        // must stay out of the response stream.
        put(payload, "proto", jstr("flattree-svc.v1"));
        put(payload, "max_batch", jint(static_cast<std::int64_t>(opt_.max_batch)));
        put(payload, "sessions", jint(kMaxSessions));
        r.ok = true;
        break;
      case Op::Stats:
        fill_stats_payload(payload);
        r.ok = true;
        break;
      case Op::Manifest: {
        std::string path;
        bool present = false;
        if (!req_string(req.body, "path", path, present, err)) break;
        if (!present) {
          err = RequestError{"svc.request.bad_field", "field 'path' (string) is required"};
          break;
        }
        // The side effect depends on observability; the response must not
        // (obs on/off byte-identity), so failures only warn on stderr.
        if (opt_.manifest_session != nullptr && obs::enabled()) {
          std::ofstream f(path);
          if (f) {
            f << opt_.manifest_session->manifest_json() << '\n';
          } else {
            std::fprintf(stderr, "svc: cannot write manifest to '%s'\n", path.c_str());
          }
        }
        put(payload, "path", jstr(path));
        r.ok = true;
        break;
      }
      case Op::Build:
      case Op::Traffic:
      case Op::Fault:
      case Op::Convert:
      case Op::Expand: {
        // Mutating ops run on the sequential path only; create the shard
        // lazily (exec_* other than build still require a built plant).
        if (sessions_[req.session] == nullptr) {
          SessionOptions sopt;
          sopt.epsilon = opt_.epsilon;
          sopt.incremental = opt_.incremental;
          sopt.slo = opt_.slo;
          sessions_[req.session] = std::make_unique<Session>(sopt);
        }
        Session& s = *sessions_[req.session];
        switch (req.op) {
          case Op::Build:
            r.ok = s.exec_build(req, payload, err);
            break;
          case Op::Traffic:
            r.ok = s.exec_traffic(req, payload, err);
            break;
          case Op::Fault:
            r.ok = s.exec_fault(req, payload, r.tally, err);
            break;
          case Op::Convert:
            r.ok = s.exec_convert(req, payload, err);
            break;
          default:
            r.ok = s.exec_expand(req, payload, err);
            break;
        }
        if (r.ok && opt_.selfcheck && req.op != Op::Traffic) {
          check::Report report = s.controller().self_check();
          if (!report.ok()) {
            violations_ += report.violations.size();
            std::string text = report.to_string();
            std::fprintf(stderr, "svc selfcheck[seq %llu]: %zu violation(s)\n%s\n",
                         static_cast<unsigned long long>(req.seq),
                         report.violations.size(), text.c_str());
          }
        }
        break;
      }
      case Op::Query:
      case Op::WhatIf:
      case Op::Design: {
        Session* s = sessions_[req.session].get();
        if (s == nullptr || !s->built()) {
          err = RequestError{"svc.session.not_built",
                             "session has no plant; send a 'build' request first"};
          break;
        }
        // Design builds every engine it needs locally per call, so it has
        // no sequential/parallel split (batch layouts are trivially
        // byte-identical).
        r.ok = req.op == Op::Query
                   ? s->exec_query(req, sequential, payload, r.tally, err)
               : req.op == Op::WhatIf
                   ? s->exec_what_if(req, sequential, payload, r.tally, err)
                   : s->exec_design(req, payload, r.tally, err);
        break;
      }
    }
  } catch (const std::exception& e) {
    r.ok = false;
    err = RequestError{"svc.internal", e.what()};
  }

  r.wall_ms = now_ms() - t0;
  r.response = r.ok ? render_response(req, payload) : render_error(req, err);
  return r;
}

void Service::emit(std::ostream& out, const Request& req, EvalResult&& r) {
  out << r.response << '\n';
  if (r.ok) {
    ++stats_.accepted;
    ++stats_.accepted_by_op[static_cast<int>(req.op)];
    stats_.fault_events += r.tally.fault_events;
    stats_.solves += r.tally.solves;
    stats_.truncated_solves += r.tally.truncated;
    stats_.certified_solves += r.tally.certified;
    if (opt_.journal != nullptr) {
      *opt_.journal << req.canonical << '\n';
      ++stats_.journal_lines;
    }
  } else {
    ++stats_.rejected;
    if (obs::enabled()) c_rejected.inc();
  }
  if (obs::enabled()) c_requests.inc();
  if (opt_.latency_hook) opt_.latency_hook(req, r.ok, r.wall_ms);
}

void Service::flush(std::vector<Request>& pending, std::ostream& out) {
  if (pending.empty()) return;
  ++stats_.batches;
  if (pending.size() > stats_.max_batch) stats_.max_batch = pending.size();
  if (obs::enabled()) c_batches.inc();

  std::vector<EvalResult> results(pending.size());
  if (pending.size() == 1) {
    results[0] = eval(pending[0], /*sequential=*/true);
  } else {
    // Read-only fan-out: every worker evaluates cold (bitwise-equal to the
    // warm sequential path), responses land in per-index slots and are
    // emitted in input order below.
    exec::parallel_for(pending.size(), [&](std::size_t i) {
      results[i] = eval(pending[i], /*sequential=*/false);
    });
  }
  for (std::size_t i = 0; i < pending.size(); ++i)
    emit(out, pending[i], std::move(results[i]));
  pending.clear();
}

void Service::run(std::istream& in, std::ostream& out) {
  OBS_SPAN("svc.run");
  std::string line;
  std::uint64_t seq = 0;
  std::vector<Request> pending;
  pending.reserve(opt_.max_batch);

  while (std::getline(in, line)) {
    ++seq;
    ++stats_.lines;
    if (!line.empty() && line.back() == '\r') line.pop_back();

    Request req;
    RequestError err;
    if (!parse_request(line, seq, req, err)) {
      // A rejected line is a batch boundary so the error response keeps
      // its place in the stream.
      flush(pending, out);
      out << render_line_error(seq, err) << '\n';
      ++stats_.rejected;
      if (obs::enabled()) {
        c_requests.inc();
        c_rejected.inc();
      }
      continue;
    }

    if (read_only(req.op)) {
      pending.push_back(std::move(req));
      if (pending.size() >= opt_.max_batch) flush(pending, out);
    } else {
      flush(pending, out);
      emit(out, req, eval(req, /*sequential=*/true));
    }
  }
  flush(pending, out);
}

}  // namespace flattree::svc
