#include "svc/protocol.hpp"

#include <array>
#include <cmath>

namespace flattree::svc {

namespace {

struct OpToken {
  Op op;
  const char* token;
};

constexpr std::array<OpToken, kOpCount> kOps = {{
    {Op::Hello, "hello"},
    {Op::Build, "build"},
    {Op::Traffic, "traffic"},
    {Op::Fault, "fault"},
    {Op::Convert, "convert"},
    {Op::WhatIf, "what_if"},
    {Op::Expand, "expand"},
    {Op::Query, "query"},
    {Op::Stats, "stats"},
    {Op::Manifest, "manifest"},
    {Op::Design, "design"},
}};

std::string op_list() {
  std::string out;
  for (const auto& t : kOps) {
    if (!out.empty()) out += ", ";
    out += t.token;
  }
  return out;
}

bool bad_field(RequestError& err, const char* key, const std::string& why) {
  err.code = "svc.request.bad_field";
  err.message = std::string("field '") + key + "': " + why;
  return false;
}

}  // namespace

const char* to_string(Op op) {
  for (const auto& t : kOps)
    if (t.op == op) return t.token;
  return "?";
}

bool parse_op(const std::string& token, Op& out) {
  for (const auto& t : kOps)
    if (token == t.token) {
      out = t.op;
      return true;
    }
  return false;
}

bool read_only(Op op) {
  return op == Op::Hello || op == Op::Query || op == Op::WhatIf ||
         op == Op::Design;
}

bool req_u64(const obs::JsonValue& body, const char* key, std::uint64_t max,
             std::uint64_t& out, bool& present, RequestError& err) {
  present = false;
  const obs::JsonValue* v = body.find(key);
  if (v == nullptr) return true;
  if (!v->is_int() || v->as_int() < 0)
    return bad_field(err, key, "expected a non-negative integer");
  if (static_cast<std::uint64_t>(v->as_int()) > max)
    return bad_field(err, key, "must be <= " + std::to_string(max));
  out = static_cast<std::uint64_t>(v->as_int());
  present = true;
  return true;
}

bool req_bool(const obs::JsonValue& body, const char* key, bool& out, bool& present,
              RequestError& err) {
  present = false;
  const obs::JsonValue* v = body.find(key);
  if (v == nullptr) return true;
  if (!v->is_bool()) return bad_field(err, key, "expected a boolean");
  out = v->as_bool();
  present = true;
  return true;
}

bool req_string(const obs::JsonValue& body, const char* key, std::string& out,
                bool& present, RequestError& err) {
  present = false;
  const obs::JsonValue* v = body.find(key);
  if (v == nullptr) return true;
  if (!v->is_string()) return bad_field(err, key, "expected a string");
  out = v->as_string();
  present = true;
  return true;
}

bool parse_request(const std::string& line, std::uint64_t seq, Request& out,
                   RequestError& err) {
  out = Request{};
  out.seq = seq;

  obs::JsonValue v;
  obs::JsonError jerr;
  if (!obs::json_parse(line, v, &jerr)) {
    err = RequestError{jerr.code, jerr.message, jerr.line, jerr.column};
    return false;
  }
  if (!v.is_object()) {
    err = RequestError{"svc.request.not_object", "a request must be a JSON object"};
    return false;
  }

  const obs::JsonValue* op = v.find("op");
  if (op == nullptr || !op->is_string()) {
    err = RequestError{"svc.request.missing_op", "field 'op' (string) is required"};
    return false;
  }
  if (!parse_op(op->as_string(), out.op)) {
    err = RequestError{"svc.request.unknown_op",
                       "unknown op '" + op->as_string() + "'; valid ops: " + op_list()};
    return false;
  }

  if (const obs::JsonValue* id = v.find("id"); id != nullptr) {
    if (id->is_array() || id->is_object()) return bad_field(err, "id", "must be a scalar");
    out.id_json = id->to_json();
  }

  bool present = false;
  std::uint64_t session = 0;
  if (!req_u64(v, "session", kMaxSessions - 1, session, present, err)) return false;
  out.session = static_cast<std::uint32_t>(session);

  if (const obs::JsonValue* dl = v.find("deadline_ms"); dl != nullptr) {
    if (!dl->is_number() || dl->as_number() < 0.0)
      return bad_field(err, "deadline_ms", "expected a number >= 0");
    out.deadline_ms = dl->as_number();
  }

  out.canonical = v.to_json();
  out.body = std::move(v);
  return true;
}

namespace {

/// Opens the fixed-order envelope prefix; caller appends payload/error and
/// closes the object.
void begin_envelope(obs::JsonWriter& w, std::uint64_t seq, const std::string& id_json,
                    const char* op_token, bool ok) {
  w.begin_object();
  w.key("schema");
  w.string_value("flattree-svc.v1");
  w.key("seq");
  w.uint_value(seq);
  if (!id_json.empty()) {
    w.key("id");
    w.raw_value(id_json);
  }
  if (op_token != nullptr) {
    w.key("op");
    w.string_value(op_token);
  }
  w.key("ok");
  w.bool_value(ok);
}

void append_error(obs::JsonWriter& w, const RequestError& err) {
  w.key("error");
  w.begin_object();
  w.key("code");
  w.string_value(err.code);
  w.key("message");
  w.string_value(err.message);
  if (err.line > 0) {
    w.key("line");
    w.uint_value(err.line);
    w.key("col");
    w.uint_value(err.column);
  }
  w.end_object();
}

}  // namespace

std::string render_response(const Request& req, const obs::JsonValue& payload) {
  obs::JsonWriter w;
  begin_envelope(w, req.seq, req.id_json, to_string(req.op), /*ok=*/true);
  for (const auto& [key, value] : payload.object()) {
    w.key(key);
    value.write(w);
  }
  w.end_object();
  return w.str();
}

std::string render_error(const Request& req, const RequestError& err) {
  obs::JsonWriter w;
  begin_envelope(w, req.seq, req.id_json, to_string(req.op), /*ok=*/false);
  append_error(w, err);
  w.end_object();
  return w.str();
}

std::string render_line_error(std::uint64_t seq, const RequestError& err) {
  obs::JsonWriter w;
  begin_envelope(w, seq, /*id_json=*/{}, /*op_token=*/nullptr, /*ok=*/false);
  append_error(w, err);
  w.end_object();
  return w.str();
}

}  // namespace flattree::svc
