#pragma once
// SLO deadline budgets for throughput queries (ISSUE 6).
//
// A wall-clock deadline cannot gate a deterministic service — the same
// request must produce the same answer at any thread count and on any
// machine. The SLO layer therefore converts a request's `deadline_ms` into
// a *deterministic* work budget: a cap on Garg-Koenemann augmentations
// (mcf::McfOptions::max_augmentations), using a fixed cost model rather
// than a timer. A budgeted solve that runs out of augmentations returns
// `truncated = true` with a certified lower bound instead of blowing the
// deadline; check::certify_served re-derives feasibility, conservation,
// support, and the lambda bracket from the flows, so a truncated answer is
// still externally verified evidence, just with a wider bracket.
//
// The augmentations-per-millisecond rate is a policy knob (flattree_svc
// --augs-per-ms), not a measurement: it makes the deadline-to-budget map a
// pure function of the request. bench_service reports how well the default
// rate tracks real wall time (SLO hit rate, latency percentiles).

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "inc/mcf_warm.hpp"
#include "mcf/commodity.hpp"
#include "mcf/garg_koenemann.hpp"

namespace flattree::svc {

/// Deadline-to-budget cost model.
struct SloPolicy {
  /// GK augmentations afforded per deadline millisecond.
  double augmentations_per_ms = 4000.0;
  /// Floor: even a tiny deadline buys enough work for a usable bound.
  std::uint64_t min_augmentations = 32;
  /// Annealing iterations afforded per deadline millisecond (the `design`
  /// op's unit of work is a candidate evaluation, not an augmentation).
  double design_iterations_per_ms = 0.25;
  /// Floor for budgeted design searches: a few moves beat none.
  std::uint64_t min_design_iterations = 4;
};

/// Maps a deadline to an augmentation budget (0 deadline = 0 = unlimited).
std::uint64_t budget_augmentations(const SloPolicy& policy, double deadline_ms);

/// Maps a deadline to a design-search iteration budget (0 deadline = 0 =
/// unlimited) using the same saturating policy shape as
/// budget_augmentations.
std::uint64_t budget_iterations(const SloPolicy& policy, double deadline_ms);

/// A budgeted solve plus its certificate verdict.
struct SloSolve {
  mcf::McfResult result;
  bool certified = false;   ///< check::certify_served passed
  std::uint64_t budget = 0; ///< augmentation cap applied (0 = unlimited)
};

/// Budgeted, certified max concurrent flow: allow_unreachable (stranded
/// endpoints are excised, served_fraction reports the remainder), dual
/// upper bound on, at most `budget` augmentations. `warm` may be null;
/// when given it must be an exact-only inc::McfWarmCache, whose resumes
/// are bitwise identical to a cold solve — the service's cold-vs-warm
/// byte-identity rests on that.
SloSolve solve_with_budget(const graph::Graph& g,
                           const std::vector<mcf::Commodity>& commodities,
                           double epsilon, std::uint64_t budget,
                           inc::McfWarmCache* warm);

}  // namespace flattree::svc
