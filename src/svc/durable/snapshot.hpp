#pragma once
// Snapshot v1: the canonical `# flattree-svc-snapshot v1` text encoding of
// full service state (ISSUE 10 tentpole). A snapshot is command-sourced:
// instead of serializing engine internals, it stores each session's
// *mutating request history* (the canonical build/traffic/fault/convert/
// expand lines, in seq order). decode + re-executing that history through
// the normal eval path rebuilds byte-identical session state — the same
// warm/cold bitwise-equality invariant the service already relies on.
// A successful `build` resets its session, so the service compacts the
// history at that point; histories stay proportional to mutations since
// the last build, not to run length.
//
// Grammar (line-oriented; every line '\n'-terminated):
//
//   # flattree-svc-snapshot v1
//   stats <13 u64 counters>          deterministic ServiceStats scalars
//   ops <kOpCount u64s>              accepted_by_op, indexed by svc::Op
//   groups <n>                       journal groups committed so far
//   session <id> <count>             then `count` record lines:
//   <op> <len> <crc> <seq> <canonical>
//   end <crc>
//
// Record lines reuse the journal v2 record framing (len = canonical byte
// length, crc = CRC-32 of "<seq> <canonical>"); the `end` trailer CRCs the
// whole payload region between the header line and itself. The encoding is
// canonical: encode(decode(s)) == s byte for byte for any snapshot this
// module produced, which is what the snapshot round-trip selfcheck
// asserts after every periodic snapshot.

#include <cstdint>
#include <string>
#include <vector>

#include "svc/protocol.hpp"

namespace flattree::svc::durable {

/// First line of every v1 snapshot.
inline constexpr char kSnapshotHeaderV1[] = "# flattree-svc-snapshot v1";

/// The deterministic ServiceStats scalars carried by the `stats` line, in
/// encoding order. Restored verbatim on recovery (never recounted).
struct SnapshotStats {
  std::uint64_t lines = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t fault_events = 0;
  std::uint64_t solves = 0;
  std::uint64_t truncated_solves = 0;
  std::uint64_t certified_solves = 0;
  std::uint64_t batches = 0;
  std::uint64_t max_batch = 0;
  std::uint64_t journal_lines = 0;
  std::uint64_t shed_oversize = 0;
  std::uint64_t shed_queue = 0;
  std::uint64_t shed_deadline = 0;
  std::uint64_t by_op[kOpCount] = {};  ///< accepted_by_op (the `ops` line)
};

/// One replayable mutating request in a session's history.
struct SnapshotRecord {
  std::string op;         ///< wire token (build/traffic/fault/convert/expand)
  std::uint64_t seq = 0;  ///< original 1-based input line number
  std::string canonical;  ///< canonical request JSON
};

/// One session shard's history (only shards with state are encoded).
struct SnapshotSession {
  std::uint32_t id = 0;
  std::vector<SnapshotRecord> records;
};

/// Full decoded snapshot: counters, journal-group cursor (snapshot cadence
/// stays aligned across recovery), and per-session histories.
struct ServiceSnapshot {
  SnapshotStats stats;
  std::uint64_t groups_committed = 0;
  std::vector<SnapshotSession> sessions;
};

/// Why a snapshot was refused. `line` is the 1-based line number of the
/// offending snapshot line (0 when the failure is not line-specific).
struct SnapshotError {
  std::string code;
  std::string message;
  std::uint64_t line = 0;
};

/// Renders the canonical v1 encoding (a decode fixpoint).
std::string encode_snapshot(const ServiceSnapshot& s);

/// Parses and CRC-validates snapshot bytes. Stable codes:
/// svc.snapshot.bad_header, svc.snapshot.truncated (missing/incomplete
/// trailer), svc.snapshot.corrupt (structural line or trailer CRC),
/// svc.snapshot.bad_record (record line framing or CRC).
bool decode_snapshot(const std::string& bytes, ServiceSnapshot& out,
                     SnapshotError& err);

}  // namespace flattree::svc::durable
