#pragma once
// Journal v2: the CRC-framed durable request log of the flattree-svc
// service (ISSUE 10 tentpole). A v2 journal is a line-oriented text file:
//
//   # flattree-svc-journal v2
//   r <len> <crc> <seq> <canonical>     one accepted request (record frame)
//   x <seq> <class> <crc>               one rejected line   (gap frame)
//   c <records> <solves> <truncated> <certified> <fault_events> <crc>
//
// Record frames carry the request's 1-based input line number (`seq`) and
// its canonical JSON rendering; `len` is the canonical's byte length and
// `crc` is the CRC-32 of "<seq> <canonical>". Gap frames mark input lines
// that were answered with an error and never journaled in v1 — v2 keeps a
// content-free marker (class: reject | oversize | queue | deadline) so a
// recovered run reproduces the rejected/shed counters exactly. A commit
// frame seals the frames written since the previous commit into one
// *group* — the durability point. Its `crc` chains over the group's frame
// CRCs plus the tally fields, so a commit certifies the whole group.
// Groups coincide with the service's deterministic batch boundaries, which
// is what makes resuming at a commit point byte-exact (see
// docs/durability.md).
//
// Recovery reader semantics:
//   * a partial final line (no trailing '\n') and any complete frames after
//     the last valid commit frame are a *torn tail*: truncated, reported via
//     truncated_bytes — a crash can only tear the end of the file;
//   * a complete line that fails to parse or checksum is *corruption*
//     (a tear never produces one): the reader refuses the journal with a
//     stable error code and the 1-based record number;
//   * a file whose first line is not the v2 header is auto-detected as a
//     v1 journal (plain canonical JSON lines): each line becomes its own
//     committed single-record group with an *unknown* tally, so recovery
//     re-evaluates instead of fast-forwarding. upgrade_v1_journal() is the
//     explicit offline upgrade path (it writes `u <records> <crc>` commit
//     frames to mark the unknown tallies).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace flattree::svc::durable {

/// First line of every v2 journal.
inline constexpr char kJournalHeaderV2[] = "# flattree-svc-journal v2";

/// Per-group deterministic work tally mirrored into the commit frame, so
/// recovery can fast-forward read-only groups without re-solving.
struct JournalTally {
  std::uint64_t solves = 0;
  std::uint64_t truncated = 0;
  std::uint64_t certified = 0;
  std::uint64_t fault_events = 0;
};

/// One frame inside a group: an accepted-request record, or a gap marker
/// for a rejected/shed input line (canonical empty, gap_class set).
struct JournalEntry {
  bool is_record = true;
  std::uint64_t seq = 0;
  std::string canonical;   ///< canonical request JSON (records only)
  std::string gap_class;   ///< reject | oversize | queue | deadline (gaps only)
};

/// One committed group: the frames sealed by a single commit frame, in
/// their original (input) order.
struct JournalGroup {
  std::vector<JournalEntry> entries;
  JournalTally tally;
  std::uint64_t records = 0;  ///< record frames in `entries`
  bool tally_known = true;    ///< false for v1-upgraded groups (`u` frames)
};

/// Why a journal was refused. `record` is the 1-based ordinal of the
/// offending record frame (for a corrupt commit frame: the last record
/// read before it).
struct JournalError {
  std::string code;
  std::string message;
  std::uint64_t record = 0;
};

/// A fully validated journal: the committed groups plus the byte accounting
/// the recovery path needs to truncate a torn tail in place.
struct JournalContents {
  int version = 2;  ///< 2, or 1 when a headerless v1 journal was detected
  std::vector<JournalGroup> groups;
  std::uint64_t records = 0;          ///< committed record frames
  std::uint64_t last_seq = 0;         ///< highest committed seq (records + gaps)
  std::uint64_t committed_bytes = 0;  ///< durable prefix length (incl. header)
  std::uint64_t truncated_bytes = 0;  ///< torn tail dropped by the reader
};

/// Parses journal bytes (v2, or auto-detected v1). Returns false only on
/// mid-stream corruption (err filled, stable code + 1-based record number);
/// a torn tail is not an error — it is truncated and reported through
/// `out.truncated_bytes`.
bool read_journal(const std::string& bytes, JournalContents& out, JournalError& err);

/// Rewrites a v1 journal (plain canonical JSON lines) as v2: one
/// single-record group per line, seq = line ordinal, sealed with `u`
/// commit frames (tally unknown). Returns false when a line is not valid
/// JSON (err.record = its ordinal).
bool upgrade_v1_journal(const std::string& v1_bytes, std::string& v2_bytes,
                        JournalError& err);

/// Streaming v2 writer. append_record/append_gap/add_tally buffer frames
/// for the open group; commit() writes them followed by the sealing commit
/// frame and flushes the stream — nothing is durable until its commit.
/// With `resume = true` the header is not written (appending to an
/// existing, tail-truncated journal after recovery).
class JournalWriter {
 public:
  explicit JournalWriter(std::ostream& out, bool resume = false);

  /// Buffers one accepted-request record frame for the open group.
  void append_record(std::uint64_t seq, const std::string& canonical);
  /// Buffers one rejected-line gap marker for the open group.
  void append_gap(std::uint64_t seq, const std::string& gap_class);
  /// Accumulates into the open group's tally (written by the commit frame).
  void add_tally(const JournalTally& t);
  /// Seals the open group; no-op when no frames are buffered.
  void commit();

  std::uint64_t groups_committed() const { return groups_; }
  std::uint64_t records_committed() const { return records_; }

 private:
  std::ostream* out_;
  std::vector<JournalEntry> pending_;
  JournalTally tally_;
  std::uint64_t groups_ = 0;
  std::uint64_t records_ = 0;
};

}  // namespace flattree::svc::durable
