#include "svc/durable/snapshot.hpp"

#include "util/crc32.hpp"

namespace flattree::svc::durable {

namespace {

std::string u64s(std::uint64_t v) { return std::to_string(v); }

/// CRC payload of a record line (same framing as journal v2 records).
std::uint32_t record_crc(std::uint64_t seq, const std::string& canonical) {
  return util::crc32(u64s(seq) + ' ' + canonical);
}

bool take_u64(const std::string& s, std::size_t& pos, std::uint64_t& out) {
  if (pos >= s.size() || s[pos] < '0' || s[pos] > '9') return false;
  std::uint64_t v = 0;
  while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
    v = v * 10 + static_cast<std::uint64_t>(s[pos] - '0');
    ++pos;
  }
  out = v;
  return true;
}

bool take_space(const std::string& s, std::size_t& pos) {
  if (pos >= s.size() || s[pos] != ' ') return false;
  ++pos;
  return true;
}

bool take_word(const std::string& s, std::size_t& pos, std::string& out) {
  std::size_t start = pos;
  while (pos < s.size() && s[pos] != ' ') ++pos;
  if (pos == start) return false;
  out = s.substr(start, pos - start);
  return true;
}

}  // namespace

std::string encode_snapshot(const ServiceSnapshot& s) {
  std::string payload;
  payload += "stats";
  const SnapshotStats& st = s.stats;
  const std::uint64_t scalars[] = {st.lines,          st.accepted,
                                   st.rejected,       st.fault_events,
                                   st.solves,         st.truncated_solves,
                                   st.certified_solves, st.batches,
                                   st.max_batch,      st.journal_lines,
                                   st.shed_oversize,  st.shed_queue,
                                   st.shed_deadline};
  for (std::uint64_t v : scalars) payload += ' ' + u64s(v);
  payload += "\nops";
  for (std::size_t i = 0; i < kOpCount; ++i) payload += ' ' + u64s(st.by_op[i]);
  payload += "\ngroups " + u64s(s.groups_committed) + '\n';
  for (const SnapshotSession& sess : s.sessions) {
    payload += "session " + u64s(sess.id) + ' ' + u64s(sess.records.size()) + '\n';
    for (const SnapshotRecord& r : sess.records) {
      payload += r.op + ' ' + u64s(r.canonical.size()) + ' ' +
                 util::crc32_hex(record_crc(r.seq, r.canonical)) + ' ' +
                 u64s(r.seq) + ' ' + r.canonical + '\n';
    }
  }
  std::string out;
  out += kSnapshotHeaderV1;
  out += '\n';
  out += payload;
  out += "end " + util::crc32_hex(util::crc32(payload)) + '\n';
  return out;
}

bool decode_snapshot(const std::string& bytes, ServiceSnapshot& out,
                     SnapshotError& err) {
  out = ServiceSnapshot{};

  // Split into complete lines; any unterminated final segment means the
  // snapshot was cut mid-write.
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    std::size_t nl = bytes.find('\n', pos);
    if (nl == std::string::npos) {
      err = {"svc.snapshot.truncated", "snapshot ends with an unterminated line",
             lines.size() + 1};
      return false;
    }
    lines.push_back(bytes.substr(pos, nl - pos));
    pos = nl + 1;
  }
  if (lines.empty() || lines[0] != kSnapshotHeaderV1) {
    err = {"svc.snapshot.bad_header", "first line is not the v1 snapshot header", 1};
    return false;
  }
  if (lines.size() < 2 || lines.back().rfind("end ", 0) != 0) {
    err = {"svc.snapshot.truncated", "snapshot has no `end` trailer",
           lines.size()};
    return false;
  }

  // Verify the trailer CRC over the payload region (between the header
  // line and the `end` line) before trusting any field.
  {
    const std::string& endline = lines.back();
    std::uint32_t want = 0;
    if (!util::parse_crc32_hex(endline.substr(4), want)) {
      err = {"svc.snapshot.corrupt", "malformed `end` trailer", lines.size()};
      return false;
    }
    const std::size_t payload_begin = lines[0].size() + 1;
    const std::size_t payload_end = bytes.size() - endline.size() - 1;
    std::string payload = bytes.substr(payload_begin, payload_end - payload_begin);
    if (util::crc32(payload) != want) {
      err = {"svc.snapshot.corrupt", "payload CRC mismatch", lines.size()};
      return false;
    }
  }

  std::size_t li = 1;
  const std::size_t last = lines.size() - 1;  // the `end` line
  auto structural = [&](const char* tag, std::vector<std::uint64_t>& vals,
                        std::size_t expect) {
    if (li >= last) {
      err = {"svc.snapshot.truncated",
             std::string("missing `") + tag + "` line", li + 1};
      return false;
    }
    const std::string& line = lines[li];
    std::size_t p = 0;
    std::string word;
    if (!take_word(line, p, word) || word != tag) {
      err = {"svc.snapshot.corrupt", std::string("expected `") + tag + "` line",
             li + 1};
      return false;
    }
    vals.clear();
    while (p < line.size()) {
      std::uint64_t v = 0;
      if (!take_space(line, p) || !take_u64(line, p, v)) {
        err = {"svc.snapshot.corrupt", std::string("malformed `") + tag + "` line",
               li + 1};
        return false;
      }
      vals.push_back(v);
    }
    if (vals.size() != expect) {
      err = {"svc.snapshot.corrupt",
             std::string("`") + tag + "` line has " + u64s(vals.size()) +
                 " fields, expected " + u64s(expect),
             li + 1};
      return false;
    }
    ++li;
    return true;
  };

  std::vector<std::uint64_t> vals;
  if (!structural("stats", vals, 13)) return false;
  SnapshotStats& st = out.stats;
  st.lines = vals[0];
  st.accepted = vals[1];
  st.rejected = vals[2];
  st.fault_events = vals[3];
  st.solves = vals[4];
  st.truncated_solves = vals[5];
  st.certified_solves = vals[6];
  st.batches = vals[7];
  st.max_batch = vals[8];
  st.journal_lines = vals[9];
  st.shed_oversize = vals[10];
  st.shed_queue = vals[11];
  st.shed_deadline = vals[12];
  if (!structural("ops", vals, kOpCount)) return false;
  for (std::size_t i = 0; i < kOpCount; ++i) st.by_op[i] = vals[i];
  if (!structural("groups", vals, 1)) return false;
  out.groups_committed = vals[0];

  while (li < last) {
    const std::string& line = lines[li];
    std::size_t p = 0;
    std::string word;
    std::uint64_t id = 0, count = 0;
    if (!take_word(line, p, word) || word != "session" || !take_space(line, p) ||
        !take_u64(line, p, id) || !take_space(line, p) || !take_u64(line, p, count) ||
        p != line.size()) {
      err = {"svc.snapshot.corrupt", "expected `session` line", li + 1};
      return false;
    }
    ++li;
    SnapshotSession sess;
    sess.id = static_cast<std::uint32_t>(id);
    for (std::uint64_t r = 0; r < count; ++r) {
      if (li >= last) {
        err = {"svc.snapshot.truncated", "session record list cut short", li + 1};
        return false;
      }
      const std::string& rline = lines[li];
      std::size_t q = 0;
      SnapshotRecord rec;
      std::uint64_t len = 0;
      std::string crc_hex;
      std::uint32_t crc = 0;
      if (!take_word(rline, q, rec.op) || !take_space(rline, q) ||
          !take_u64(rline, q, len) || !take_space(rline, q) ||
          !take_word(rline, q, crc_hex) || !util::parse_crc32_hex(crc_hex, crc) ||
          !take_space(rline, q) || !take_u64(rline, q, rec.seq) ||
          !take_space(rline, q)) {
        err = {"svc.snapshot.bad_record", "malformed session record line", li + 1};
        return false;
      }
      rec.canonical = rline.substr(q);
      if (rec.canonical.size() != len || record_crc(rec.seq, rec.canonical) != crc) {
        err = {"svc.snapshot.bad_record",
               "session record length or CRC mismatch", li + 1};
        return false;
      }
      sess.records.push_back(std::move(rec));
      ++li;
    }
    out.sessions.push_back(std::move(sess));
  }
  return true;
}

}  // namespace flattree::svc::durable
