#include "svc/durable/journal.hpp"

#include <ostream>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/crc32.hpp"

namespace flattree::svc::durable {

namespace {

obs::Counter c_records("svc.durable.records");
obs::Counter c_gaps("svc.durable.gaps");
obs::Counter c_groups("svc.durable.groups");
obs::Counter c_read_records("svc.durable.records_read");
obs::Counter c_truncated("svc.durable.truncated_bytes");
obs::Counter c_upgrades("svc.durable.v1_upgrades");

std::string u64s(std::uint64_t v) { return std::to_string(v); }

/// CRC payload of a record frame: "<seq> <canonical>".
std::uint32_t record_crc(std::uint64_t seq, const std::string& canonical) {
  return util::crc32(u64s(seq) + ' ' + canonical);
}

/// CRC payload of a gap frame: "<seq> <class>".
std::uint32_t gap_crc(std::uint64_t seq, const std::string& cls) {
  return util::crc32(u64s(seq) + ' ' + cls);
}

std::string render_record(const JournalEntry& e) {
  return "r " + u64s(e.canonical.size()) + ' ' +
         util::crc32_hex(record_crc(e.seq, e.canonical)) + ' ' + u64s(e.seq) + ' ' +
         e.canonical + '\n';
}

std::string render_gap(const JournalEntry& e) {
  return "x " + u64s(e.seq) + ' ' + e.gap_class + ' ' +
         util::crc32_hex(gap_crc(e.seq, e.gap_class)) + '\n';
}

/// CRC payload of a commit frame: the tally fields plus the chained member
/// frame CRCs, so one commit certifies the whole group.
std::uint32_t commit_crc(std::uint64_t records, const JournalTally& t,
                         const std::vector<std::uint32_t>& member_crcs) {
  std::string payload = u64s(records) + ' ' + u64s(t.solves) + ' ' + u64s(t.truncated) +
                        ' ' + u64s(t.certified) + ' ' + u64s(t.fault_events);
  for (std::uint32_t c : member_crcs) payload += ' ' + util::crc32_hex(c);
  return util::crc32(payload);
}

/// CRC payload of an unknown-tally (`u`) commit frame.
std::uint32_t unknown_commit_crc(std::uint64_t records,
                                 const std::vector<std::uint32_t>& member_crcs) {
  std::string payload = u64s(records);
  for (std::uint32_t c : member_crcs) payload += ' ' + util::crc32_hex(c);
  return util::crc32(payload);
}

bool take_u64(const std::string& s, std::size_t& pos, std::uint64_t& out) {
  if (pos >= s.size() || s[pos] < '0' || s[pos] > '9') return false;
  std::uint64_t v = 0;
  while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
    v = v * 10 + static_cast<std::uint64_t>(s[pos] - '0');
    ++pos;
  }
  out = v;
  return true;
}

bool take_space(const std::string& s, std::size_t& pos) {
  if (pos >= s.size() || s[pos] != ' ') return false;
  ++pos;
  return true;
}

bool take_word(const std::string& s, std::size_t& pos, std::string& out) {
  std::size_t start = pos;
  while (pos < s.size() && s[pos] != ' ') ++pos;
  if (pos == start) return false;
  out = s.substr(start, pos - start);
  return true;
}

}  // namespace

JournalWriter::JournalWriter(std::ostream& out, bool resume) : out_(&out) {
  if (!resume) {
    *out_ << kJournalHeaderV2 << '\n';
    out_->flush();
  }
}

void JournalWriter::append_record(std::uint64_t seq, const std::string& canonical) {
  JournalEntry e;
  e.is_record = true;
  e.seq = seq;
  e.canonical = canonical;
  pending_.push_back(std::move(e));
}

void JournalWriter::append_gap(std::uint64_t seq, const std::string& gap_class) {
  JournalEntry e;
  e.is_record = false;
  e.seq = seq;
  e.gap_class = gap_class;
  pending_.push_back(std::move(e));
}

void JournalWriter::add_tally(const JournalTally& t) {
  tally_.solves += t.solves;
  tally_.truncated += t.truncated;
  tally_.certified += t.certified;
  tally_.fault_events += t.fault_events;
}

void JournalWriter::commit() {
  if (pending_.empty()) {
    tally_ = JournalTally{};
    return;
  }
  std::uint64_t records = 0;
  std::vector<std::uint32_t> member_crcs;
  member_crcs.reserve(pending_.size());
  std::string block;
  for (const JournalEntry& e : pending_) {
    if (e.is_record) {
      ++records;
      member_crcs.push_back(record_crc(e.seq, e.canonical));
      block += render_record(e);
      c_records.inc();
    } else {
      member_crcs.push_back(gap_crc(e.seq, e.gap_class));
      block += render_gap(e);
      c_gaps.inc();
    }
  }
  block += "c " + u64s(records) + ' ' + u64s(tally_.solves) + ' ' +
           u64s(tally_.truncated) + ' ' + u64s(tally_.certified) + ' ' +
           u64s(tally_.fault_events) + ' ' +
           util::crc32_hex(commit_crc(records, tally_, member_crcs)) + '\n';
  *out_ << block;
  out_->flush();
  ++groups_;
  records_ += records;
  c_groups.inc();
  pending_.clear();
  tally_ = JournalTally{};
}

bool read_journal(const std::string& bytes, JournalContents& out, JournalError& err) {
  out = JournalContents{};
  if (bytes.empty()) return true;

  // Split into complete lines; a final segment without '\n' is a partial
  // (torn) line and never parsed.
  struct Line {
    std::size_t begin;  ///< offset of the first byte
    std::size_t end;    ///< offset one past the terminating '\n'
  };
  std::vector<Line> lines;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    std::size_t nl = bytes.find('\n', pos);
    if (nl == std::string::npos) break;  // partial final line -> torn tail
    lines.push_back({pos, nl + 1});
    pos = nl + 1;
  }
  auto text = [&](const Line& l) {
    return bytes.substr(l.begin, l.end - l.begin - 1);
  };

  if (lines.empty()) {
    // Nothing but a partial line: the whole file is a torn tail.
    out.truncated_bytes = bytes.size();
    c_truncated.add(out.truncated_bytes);
    return true;
  }

  std::size_t li = 0;
  const bool v2 = text(lines[0]) == kJournalHeaderV2;
  std::uint64_t records_seen = 0;

  if (!v2) {
    // v1: plain canonical JSON lines, one committed single-record group
    // per line, tally unknown (recovery re-evaluates these groups).
    out.version = 1;
    for (; li < lines.size(); ++li) {
      std::string line = text(lines[li]);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) {
        out.committed_bytes = lines[li].end;
        continue;
      }
      if (line[0] != '{') {
        err = {"svc.journal.bad_v1_line",
               "line " + std::to_string(li + 1) + " of a headerless (v1) journal is "
               "not a JSON object",
               records_seen + 1};
        return false;
      }
      ++records_seen;
      JournalGroup g;
      JournalEntry e;
      e.is_record = true;
      e.seq = records_seen;
      e.canonical = std::move(line);
      g.entries.push_back(std::move(e));
      g.records = 1;
      g.tally_known = false;
      out.last_seq = records_seen;
      out.groups.push_back(std::move(g));
      out.committed_bytes = lines[li].end;
    }
    out.records = records_seen;
    out.truncated_bytes = bytes.size() - out.committed_bytes;
    c_read_records.add(out.records);
    c_truncated.add(out.truncated_bytes);
    return true;
  }

  out.committed_bytes = lines[0].end;  // the header itself is durable
  std::vector<JournalEntry> pending;
  std::vector<std::uint32_t> pending_crcs;
  std::uint64_t pending_records = 0;

  for (li = 1; li < lines.size(); ++li) {
    const std::string line = text(lines[li]);
    std::size_t p = 2;
    const char tag = line.empty() ? '\0' : line[0];
    const bool tagged = line.size() >= 2 && line[1] == ' ' &&
                        (tag == 'r' || tag == 'x' || tag == 'c' || tag == 'u');
    bool ok = false;
    if (tagged && tag == 'r') {
      std::uint64_t len = 0, seq = 0;
      std::string crc_hex;
      std::uint32_t crc = 0;
      if (take_u64(line, p, len) && take_space(line, p) && take_word(line, p, crc_hex) &&
          util::parse_crc32_hex(crc_hex, crc) && take_space(line, p) &&
          take_u64(line, p, seq) && take_space(line, p)) {
        std::string canonical = line.substr(p);
        if (canonical.size() == len && record_crc(seq, canonical) == crc) {
          JournalEntry e;
          e.is_record = true;
          e.seq = seq;
          e.canonical = std::move(canonical);
          pending.push_back(std::move(e));
          pending_crcs.push_back(crc);
          ++pending_records;
          ++records_seen;
          ok = true;
        }
      }
      if (!ok) {
        err = {"svc.journal.corrupt_record",
               "record frame at line " + std::to_string(li + 1) +
                   " fails to parse or checksum",
               records_seen + 1};
        return false;
      }
    } else if (tagged && tag == 'x') {
      std::uint64_t seq = 0;
      std::string cls, crc_hex;
      std::uint32_t crc = 0;
      if (take_u64(line, p, seq) && take_space(line, p) && take_word(line, p, cls) &&
          take_space(line, p) && take_word(line, p, crc_hex) && p == line.size() &&
          util::parse_crc32_hex(crc_hex, crc) && gap_crc(seq, cls) == crc) {
        JournalEntry e;
        e.is_record = false;
        e.seq = seq;
        e.gap_class = std::move(cls);
        pending.push_back(std::move(e));
        pending_crcs.push_back(crc);
        ok = true;
      }
      if (!ok) {
        err = {"svc.journal.corrupt_gap",
               "gap frame at line " + std::to_string(li + 1) +
                   " fails to parse or checksum",
               records_seen};
        return false;
      }
    } else if (tagged && (tag == 'c' || tag == 'u')) {
      std::uint64_t records = 0;
      JournalTally t;
      std::string crc_hex;
      std::uint32_t crc = 0;
      bool fields = take_u64(line, p, records);
      if (fields && tag == 'c') {
        fields = take_space(line, p) && take_u64(line, p, t.solves) &&
                 take_space(line, p) && take_u64(line, p, t.truncated) &&
                 take_space(line, p) && take_u64(line, p, t.certified) &&
                 take_space(line, p) && take_u64(line, p, t.fault_events);
      }
      if (fields && take_space(line, p) && take_word(line, p, crc_hex) &&
          p == line.size() && util::parse_crc32_hex(crc_hex, crc) &&
          records == pending_records &&
          (tag == 'c' ? commit_crc(records, t, pending_crcs)
                      : unknown_commit_crc(records, pending_crcs)) == crc) {
        JournalGroup g;
        g.entries = std::move(pending);
        g.tally = t;
        g.records = records;
        g.tally_known = tag == 'c';
        for (const JournalEntry& e : g.entries)
          if (e.seq > out.last_seq) out.last_seq = e.seq;
        out.records += records;
        out.groups.push_back(std::move(g));
        out.committed_bytes = lines[li].end;
        pending.clear();
        pending_crcs.clear();
        pending_records = 0;
        ok = true;
      }
      if (!ok) {
        err = {"svc.journal.corrupt_commit",
               "commit frame at line " + std::to_string(li + 1) +
                   " fails to parse, checksum, or chain over its group",
               records_seen};
        return false;
      }
    } else {
      err = {"svc.journal.corrupt_record",
             "line " + std::to_string(li + 1) + " is not a journal frame",
             records_seen + 1};
      return false;
    }
  }

  // Complete frames after the last commit plus any partial final line are
  // the torn tail: durable only up to committed_bytes.
  out.truncated_bytes = bytes.size() - out.committed_bytes;
  c_read_records.add(out.records);
  c_truncated.add(out.truncated_bytes);
  return true;
}

bool upgrade_v1_journal(const std::string& v1_bytes, std::string& v2_bytes,
                        JournalError& err) {
  v2_bytes.clear();
  v2_bytes += kJournalHeaderV2;
  v2_bytes += '\n';
  std::uint64_t seq = 0;
  std::size_t pos = 0;
  while (pos < v1_bytes.size()) {
    std::size_t nl = v1_bytes.find('\n', pos);
    if (nl == std::string::npos) break;  // torn v1 tail: dropped
    std::string line = v1_bytes.substr(pos, nl - pos);
    pos = nl + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    obs::JsonValue v;
    obs::JsonError jerr;
    if (!obs::json_parse(line, v, &jerr)) {
      err = {"svc.journal.bad_v1_line",
             "v1 journal line is not valid JSON: " + jerr.code, seq + 1};
      return false;
    }
    ++seq;
    JournalEntry e;
    e.is_record = true;
    e.seq = seq;
    e.canonical = std::move(line);
    std::vector<std::uint32_t> crcs{record_crc(e.seq, e.canonical)};
    v2_bytes += render_record(e);
    v2_bytes += "u 1 " + util::crc32_hex(unknown_commit_crc(1, crcs)) + '\n';
  }
  c_upgrades.inc();
  return true;
}

}  // namespace flattree::svc::durable
