#pragma once
// Service: the long-running flattree-svc.v1 request loop (ISSUE 6
// tentpole). Reads JSON-lines requests from a stream, evaluates them
// against up to kMaxSessions session shards, and writes one response line
// per input line, in input order.
//
// Determinism contract (the same one every bench in this repo honors):
// given the same input and the same ServiceOptions knobs that are part of
// the protocol surface (max_batch, epsilon, slo), the response stream and
// the journal are byte-identical
//
//   * at any --threads count,
//   * with observability on or off,
//   * cold or --incremental,
//   * and when a journal is replayed as the input script.
//
// Batching: consecutive read-only requests (hello/query/what_if) collect
// into a batch; any mutating op, any rejected line, a full batch
// (max_batch), or EOF is a boundary. Boundaries are a pure function of the
// input, never of timing. A batch of one evaluates sequentially through
// the warm engines; a larger batch fans out over the exec pool with every
// worker evaluating cold — the two paths are bitwise-equal by
// construction (see session.hpp), so the batch layout never shows in the
// output bytes.
//
// Journal: the canonical re-rendering (JsonValue::to_json) of every
// *accepted* request, one per line, written at response emission in input
// order. Rejected requests are never journaled, so a journal replays
// without errors and `journal(replay(journal)) == journal` byte for byte.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "svc/protocol.hpp"
#include "svc/session.hpp"

namespace flattree::obs {
// fwd: backs the `manifest` op when observability is on
class RunSession;
}

namespace flattree::svc {

/// Deterministic run counters (the `stats` op reports these; wall-clock
/// quantities are deliberately excluded — they live in bench_service's
/// latency histograms instead).
struct ServiceStats {
  std::uint64_t lines = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t accepted_by_op[kOpCount] = {};  ///< indexed by Op
  std::uint64_t fault_events = 0;
  std::uint64_t solves = 0;
  std::uint64_t truncated_solves = 0;
  std::uint64_t certified_solves = 0;
  std::uint64_t batches = 0;
  std::uint64_t max_batch = 0;  ///< largest batch actually evaluated
  std::uint64_t journal_lines = 0;
};

/// Knobs for one service run; all deterministic except `latency_hook`.
struct ServiceOptions {
  std::size_t max_batch = 8;   ///< read-only requests per batch (>= 1)
  double epsilon = 0.12;       ///< GK epsilon for throughput queries
  bool incremental = false;    ///< warm engines on the sequential path
  bool selfcheck = false;      ///< run controller self_check after mutations
  SloPolicy slo;
  std::ostream* journal = nullptr;           ///< accepted-request journal
  obs::RunSession* manifest_session = nullptr;  ///< backs the `manifest` op
  /// Called at response emission, in input order. `wall_ms` is measured
  /// wall time for evaluating that request — not deterministic, and never
  /// part of the response stream; bench_service builds its latency
  /// histograms and SLO hit rates from this hook.
  std::function<void(const Request& req, bool ok, double wall_ms)> latency_hook;
};

/// The JSON-lines request loop: reads requests, batches consecutive
/// read-only ones through the exec pool (deterministic boundaries, results
/// emitted in input order), journals accepted requests, and answers every
/// line exactly once.
class Service {
 public:
  explicit Service(ServiceOptions opt);

  /// Processes `in` to EOF; one response line per input line on `out`.
  void run(std::istream& in, std::ostream& out);

  const ServiceStats& stats() const { return stats_; }
  /// Controller self_check violations observed (selfcheck mode only).
  std::size_t selfcheck_violations() const { return violations_; }

 private:
  struct EvalResult {
    std::string response;
    bool ok = false;
    EvalTally tally;
    double wall_ms = 0.0;
  };

  EvalResult eval(const Request& req, bool sequential);
  void emit(std::ostream& out, const Request& req, EvalResult&& r);
  void flush(std::vector<Request>& pending, std::ostream& out);
  void fill_stats_payload(obs::JsonValue& payload) const;

  ServiceOptions opt_;
  ServiceStats stats_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::size_t violations_ = 0;
};

}  // namespace flattree::svc
