#pragma once
// Service: the long-running flattree-svc.v1 request loop (ISSUE 6
// tentpole; durability and overload shedding added by ISSUE 10). Reads
// JSON-lines requests from a stream, evaluates them against up to
// kMaxSessions session shards, and writes one response line per input
// line, in input order.
//
// Determinism contract (the same one every bench in this repo honors):
// given the same input and the same ServiceOptions knobs that are part of
// the protocol surface (max_batch, epsilon, slo, the overload caps), the
// response stream and the journal are byte-identical
//
//   * at any --threads count,
//   * with observability on or off,
//   * cold or --incremental,
//   * when a journal is replayed as the input script,
//   * and across a crash + recover() at any journal commit point.
//
// Batching: consecutive read-only requests (hello/query/what_if/design)
// collect into a batch; any mutating op, any rejected line, a full batch
// (max_batch), or EOF is a boundary. Boundaries are a pure function of the
// input, never of timing. A batch with one live request evaluates
// sequentially through the warm engines; a larger batch fans out over the
// exec pool with every worker evaluating cold — the two paths are
// bitwise-equal by construction (see session.hpp), so the batch layout
// never shows in the output bytes. `batches`/`max_batch` count *accepted*
// requests per read-only flush (a flush whose every request is rejected
// counts no batch), which is what lets recovery reconstruct them from the
// journal's committed groups.
//
// Journal: v2 framed (svc/durable/journal.hpp). Every accepted request
// becomes a record frame; every rejected or shed line becomes a
// content-free gap frame; each batch boundary seals a commit-framed group
// — the durability point. Rejected lines still replay cleanly because
// run() auto-detects a v2 journal used as the input script and replays
// its groups with their original seqs and batch layout, so
// `journal(replay(journal)) == journal` byte for byte, and the same holds
// across recover() (see docs/durability.md).
//
// Overload protection (armed as a unit by max_queued != 0, plus the
// independent max_line_bytes cap): oversized lines, queue-depth
// overflows, and deadlines below the deterministic service floor are shed
// with stable svc.overload.* codes before any work is done. Shedding is a
// pure function of the input stream, so shed decisions are identical
// across the whole byte-identity matrix.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "svc/durable/journal.hpp"
#include "svc/durable/snapshot.hpp"
#include "svc/protocol.hpp"
#include "svc/session.hpp"

namespace flattree::obs {
// fwd: backs the `manifest` op when observability is on
class RunSession;
}

namespace flattree::svc {

/// Deterministic run counters (the `stats` op reports these; wall-clock
/// quantities are deliberately excluded — they live in bench_service's
/// latency histograms instead).
struct ServiceStats {
  std::uint64_t lines = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t accepted_by_op[kOpCount] = {};  ///< indexed by Op
  std::uint64_t fault_events = 0;
  std::uint64_t solves = 0;
  std::uint64_t truncated_solves = 0;
  std::uint64_t certified_solves = 0;
  std::uint64_t batches = 0;     ///< read-only flushes with >= 1 accepted
  std::uint64_t max_batch = 0;   ///< most accepted requests in one flush
  std::uint64_t journal_lines = 0;
  std::uint64_t shed_oversize = 0;  ///< lines over max_line_bytes
  std::uint64_t shed_queue = 0;     ///< svc.overload.queue_full sheds
  std::uint64_t shed_deadline = 0;  ///< svc.overload.deadline sheds
};

/// Knobs for one service run; all deterministic except `latency_hook` and
/// the sink plumbing.
struct ServiceOptions {
  std::size_t max_batch = 8;   ///< read-only requests per batch (>= 1)
  double epsilon = 0.12;       ///< GK epsilon for throughput queries
  bool incremental = false;    ///< warm engines on the sequential path
  bool selfcheck = false;      ///< controller + snapshot invariant batteries
  SloPolicy slo;
  std::ostream* journal = nullptr;  ///< v2 framed journal (null = off)
  /// Append to an existing tail-truncated journal: suppress the v2 header
  /// (set by the --recover path after it truncates the torn tail).
  bool journal_resume = false;
  /// Hard cap on raw input line bytes (0 = unlimited). Over-cap lines are
  /// shed with svc.overload.line_too_long before parsing.
  std::size_t max_line_bytes = 0;
  /// Arms admission control (0 = off): at most this many live queued
  /// read-only requests per session shard; overflow is shed with
  /// svc.overload.queue_full, and deadlines below the deterministic
  /// queue-depth floor are shed with svc.overload.deadline.
  std::size_t max_queued = 0;
  /// Snapshot cadence in committed journal groups (0 = off; needs
  /// snapshot_sink). The cadence counter survives recovery, so a
  /// recovered run snapshots at the same points as the uninterrupted one.
  std::uint64_t snapshot_every = 0;
  /// Receives each periodic snapshot's canonical encoding.
  std::function<void(const std::string&)> snapshot_sink;
  obs::RunSession* manifest_session = nullptr;  ///< backs the `manifest` op
  /// Called at response emission, in input order. `wall_ms` is measured
  /// wall time for evaluating that request — not deterministic, and never
  /// part of the response stream; bench_service builds its latency
  /// histograms and SLO hit rates from this hook.
  std::function<void(const Request& req, bool ok, double wall_ms)> latency_hook;
};

/// What recover() did, for operator visibility and the bench recovery
/// section (all deterministic).
struct RecoverStats {
  std::uint64_t groups_fast = 0;    ///< groups fast-forwarded from frame tallies
  std::uint64_t groups_reexec = 0;  ///< groups re-evaluated through eval()
  std::uint64_t records = 0;        ///< record frames applied
  std::uint64_t resume_seq = 0;     ///< last durable seq; input resumes after it
};

/// The JSON-lines request loop: reads requests, batches consecutive
/// read-only ones through the exec pool (deterministic boundaries, results
/// emitted in input order), journals accepted requests, sheds overload,
/// snapshots periodically, and answers every live line exactly once.
class Service {
 public:
  explicit Service(ServiceOptions opt);

  /// Processes `in` to EOF; one response line per input line on `out`.
  /// When the first line is the journal v2 header the stream is replayed
  /// as a journal script: groups re-evaluate with their original seqs and
  /// batch layout (gap frames reproduce their counters and emit no
  /// response line).
  void run(std::istream& in, std::ostream& out);

  /// Rebuilds state from an optional snapshot plus the committed groups of
  /// a validated journal (read_journal output). Re-executes mutating
  /// records, fast-forwards tally-known read-only groups, re-evaluates
  /// unknown-tally (v1-upgraded) groups, and replays gap frames into the
  /// shed/rejected counters. On success the service is byte-equivalent to
  /// one that processed the first resume_seq input lines without crashing;
  /// feed it the remaining lines. Returns false with `error` holding a
  /// stable code + detail (svc.recover.bad_snapshot,
  /// svc.recover.replay_failed, svc.recover.misaligned).
  bool recover(const durable::ServiceSnapshot* snap,
               const durable::JournalContents& journal, RecoverStats& rs,
               std::string& error);

  /// The current state as a decoded snapshot (what the periodic sink
  /// receives, pre-encoding). Also the bench's recovery-equivalence probe:
  /// two services with byte-equal snapshot encodings answer every future
  /// request identically.
  durable::ServiceSnapshot snapshot_state() const;

  const ServiceStats& stats() const { return stats_; }
  /// Controller self_check + snapshot battery violations (selfcheck mode).
  std::size_t selfcheck_violations() const { return violations_; }

 private:
  struct EvalResult {
    std::string response;
    bool ok = false;
    EvalTally tally;
    double wall_ms = 0.0;
  };
  /// One queued read-only request; shed entries keep their slot so
  /// responses stay in input order but are never evaluated.
  struct PendingReq {
    Request req;
    bool shed = false;
    RequestError err;       ///< the svc.overload.* rejection (shed only)
    std::string gap_class;  ///< journal gap class (shed only)
  };

  EvalResult eval(const Request& req, bool sequential);
  void emit(std::ostream& out, const Request& req, EvalResult&& r);
  void flush(std::vector<PendingReq>& pending, std::ostream& out);
  /// Processes one raw input line (cap check, parse, admission, dispatch).
  void process_line(std::string line, std::ostream& out,
                    std::vector<PendingReq>& pending);
  /// Seals the open journal group ending at input line `last_seq` and
  /// advances the snapshot cadence.
  void commit_group(std::uint64_t last_seq);
  /// Journals a gap frame + its own commit for a boundary-rejected line.
  void gap_and_seal(std::uint64_t seq, const std::string& gap_class);
  /// Emits a periodic snapshot when the cadence lands on a safe commit
  /// (every processed line durable — snapshot and journal agree).
  void maybe_snapshot();
  /// Replays a journal used as the input script (see run()).
  void run_journal_script(std::istream& in, std::ostream& out);
  /// Applies one committed group during recover() — re-executes, counts,
  /// or fast-forwards it (see recover()).
  bool replay_group_recover(const durable::JournalGroup& g, RecoverStats& rs,
                            std::string& error);
  /// Records an accepted mutating request into its session's replay
  /// history (a successful build compacts the history).
  void capture_history(const Request& req);
  void fill_stats_payload(obs::JsonValue& payload) const;

  ServiceOptions opt_;
  ServiceStats stats_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::vector<std::vector<durable::SnapshotRecord>> histories_;
  std::unique_ptr<durable::JournalWriter> writer_;
  std::uint64_t groups_committed_ = 0;
  std::uint64_t last_committed_seq_ = 0;
  std::size_t violations_ = 0;
};

}  // namespace flattree::svc
