// flattree_svc: the stdin/stdout flat-tree controller service.
//
//   echo '{"op":"build","k":8}' | flattree_svc
//   flattree_svc --script session.jsonl --journal journal.jsonl
//   flattree_svc --script session.jsonl --journal journal.jsonl
//                --snapshot snap.txt --snapshot-every 8 --recover
//
// One flattree-svc.v1 response line per input line (see DESIGN.md
// Section 10). The response stream and journal are byte-identical at any
// --threads count, with or without --metrics-json/--trace, cold or
// --incremental, when a journal is replayed as the next --script, and
// across a crash + --recover (docs/durability.md).
//
// Durability: --journal writes the CRC-framed v2 journal; --snapshot
// names the snapshot file the periodic sink maintains (atomically, via
// tmp + rename) every --snapshot-every committed groups. --recover
// validates the journal, truncates its torn tail in place, restores the
// snapshot (when the file exists), replays the journal suffix, skips the
// already-durable prefix of the input script, and resumes — the combined
// journal ends byte-identical to an uninterrupted run. Overload caps:
// --max-line-bytes sheds oversized lines; --max-queued arms per-session
// admission control and deadline shedding (svc.overload.* codes).
//
// Exit codes: 0 ok, 1 selfcheck violations, 2 unopenable file,
// 3 recovery refused (corrupt journal/snapshot or replay failure).

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "exec/parallel_for.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "svc/svc.hpp"
#include "util/cli.hpp"

using namespace flattree;

namespace {

bool slurp(const std::string& path, std::string& out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream ss;
  ss << f.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string script, journal_path, snapshot_path, metrics_json, trace;
  std::int64_t batch = 8, threads = 0, min_augs = 32;
  std::int64_t snapshot_every = 32, max_line_bytes = 0, max_queued = 0;
  double eps = 0.12, augs_per_ms = 4000.0;
  bool incremental = false, selfcheck = false, recover = false;

  util::CliParser cli("flattree_svc: JSON-lines controller service (flattree-svc.v1).");
  cli.add_string("script", &script, "read requests from this file instead of stdin");
  cli.add_string("journal", &journal_path,
                 "write the CRC-framed v2 journal of accepted requests to this file");
  cli.add_string("snapshot", &snapshot_path,
                 "maintain the periodic state snapshot at this path (tmp + rename)");
  cli.add_int("snapshot-every", &snapshot_every,
              "snapshot cadence in committed journal groups (needs --snapshot)");
  cli.add_bool("recover", &recover,
               "recover from --snapshot/--journal before reading the script: "
               "truncate the journal's torn tail, replay, resume after the "
               "durable prefix (exit 3 if the journal or snapshot is corrupt)");
  cli.add_int("max-line-bytes", &max_line_bytes,
              "shed request lines longer than this before parsing (0 = unlimited)");
  cli.add_int("max-queued", &max_queued,
              "arm admission control: max queued read-only requests per session "
              "(0 = off; also arms deterministic deadline shedding)");
  cli.add_int("batch", &batch, "max consecutive read-only requests evaluated as one batch");
  cli.add_int("threads", &threads,
              "execution threads (0 = FLATTREE_THREADS env / hardware concurrency)");
  cli.add_double("eps", &eps, "Garg-Koenemann epsilon for throughput queries");
  cli.add_double("augs-per-ms", &augs_per_ms,
                 "SLO cost model: GK augmentations afforded per deadline millisecond");
  cli.add_int("min-augs", &min_augs, "SLO budget floor (augmentations)");
  cli.add_bool("incremental", &incremental,
               "reuse work across requests (delta-repaired BFS caches, warm-started "
               "MCF); output is byte-identical to cold mode");
  cli.add_bool("selfcheck", &selfcheck,
               "run the controller validity battery after every mutating request "
               "and the snapshot battery after every snapshot (exit 1 on any "
               "violation)");
  cli.add_string("metrics-json", &metrics_json,
                 "write a JSON run manifest to this path (also backs the 'manifest' op)");
  cli.add_string("trace", &trace, "write a JSON-lines span trace to this path");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  exec::set_global_threads(threads > 0 ? static_cast<unsigned>(threads) : 0);
  obs::RunSession obs_session(argc, argv, metrics_json, trace);
  if (obs_session.active()) {
    obs::set_enabled(true);
    if (!trace.empty()) obs::start_tracing();
  }

  std::ifstream script_file;
  if (!script.empty()) {
    script_file.open(script);
    if (!script_file) {
      std::fprintf(stderr, "flattree_svc: cannot open --script '%s'\n", script.c_str());
      return 2;
    }
  }

  if (recover && journal_path.empty()) {
    std::fprintf(stderr, "flattree_svc: --recover requires --journal\n");
    return 2;
  }

  // Recovery happens before the journal is (re)opened for writing: read
  // and validate the old bytes, truncate the torn tail in place, then
  // append to the durable prefix.
  svc::durable::JournalContents recovered_journal;
  svc::durable::ServiceSnapshot recovered_snapshot;
  bool have_snapshot = false;
  if (recover) {
    std::string bytes;
    if (!slurp(journal_path, bytes)) {
      std::fprintf(stderr, "flattree_svc recover: cannot read --journal '%s'\n",
                   journal_path.c_str());
      return 3;
    }
    svc::durable::JournalError jerr;
    if (!svc::durable::read_journal(bytes, recovered_journal, jerr)) {
      std::fprintf(stderr, "flattree_svc recover: %s: %s (record %llu)\n",
                   jerr.code.c_str(), jerr.message.c_str(),
                   static_cast<unsigned long long>(jerr.record));
      return 3;
    }
    if (recovered_journal.truncated_bytes > 0) {
      std::fprintf(stderr, "flattree_svc recover: truncating %llu torn byte(s)\n",
                   static_cast<unsigned long long>(recovered_journal.truncated_bytes));
    }
    if (recovered_journal.version == 1) {
      // A headerless v1 journal cannot be appended to in place: rewrite
      // its durable prefix through the explicit upgrade path, then resume
      // on the upgraded v2 file.
      std::string v2;
      svc::durable::JournalError uerr;
      if (!svc::durable::upgrade_v1_journal(
              bytes.substr(0, recovered_journal.committed_bytes), v2, uerr)) {
        std::fprintf(stderr, "flattree_svc recover: %s: %s (record %llu)\n",
                     uerr.code.c_str(), uerr.message.c_str(),
                     static_cast<unsigned long long>(uerr.record));
        return 3;
      }
      std::ofstream up(journal_path, std::ios::binary | std::ios::trunc);
      if (!up) {
        std::fprintf(stderr, "flattree_svc recover: cannot rewrite '%s'\n",
                     journal_path.c_str());
        return 3;
      }
      up << v2;
    } else {
      std::error_code ec;
      std::filesystem::resize_file(journal_path, recovered_journal.committed_bytes,
                                   ec);
      if (ec) {
        std::fprintf(stderr, "flattree_svc recover: cannot truncate '%s': %s\n",
                     journal_path.c_str(), ec.message().c_str());
        return 3;
      }
    }
    std::string snap_bytes;
    if (!snapshot_path.empty() && slurp(snapshot_path, snap_bytes)) {
      svc::durable::SnapshotError serr;
      if (!svc::durable::decode_snapshot(snap_bytes, recovered_snapshot, serr)) {
        std::fprintf(stderr, "flattree_svc recover: %s: %s (line %llu)\n",
                     serr.code.c_str(), serr.message.c_str(),
                     static_cast<unsigned long long>(serr.line));
        return 3;
      }
      have_snapshot = true;
    }
  }

  std::ofstream journal_file;
  if (!journal_path.empty()) {
    journal_file.open(journal_path, recover ? std::ios::binary | std::ios::app
                                            : std::ios::binary | std::ios::trunc);
    if (!journal_file) {
      std::fprintf(stderr, "flattree_svc: cannot open --journal '%s'\n",
                   journal_path.c_str());
      return 2;
    }
  }

  svc::ServiceOptions opt;
  opt.max_batch = batch > 0 ? static_cast<std::size_t>(batch) : 1;
  opt.epsilon = eps;
  opt.incremental = incremental;
  opt.selfcheck = selfcheck;
  opt.slo.augmentations_per_ms = augs_per_ms;
  opt.slo.min_augmentations = min_augs > 0 ? static_cast<std::uint64_t>(min_augs) : 0;
  opt.journal = journal_path.empty() ? nullptr : &journal_file;
  // Resume (header already on disk) unless the durable prefix came back
  // empty — a v2 journal cut mid-header truncates to nothing, and the
  // fresh append must start with a header again. The v1 upgrade rewrote a
  // headered file, so it always resumes.
  opt.journal_resume = recover && (recovered_journal.version == 1 ||
                                   recovered_journal.committed_bytes > 0);
  opt.max_line_bytes =
      max_line_bytes > 0 ? static_cast<std::size_t>(max_line_bytes) : 0;
  opt.max_queued = max_queued > 0 ? static_cast<std::size_t>(max_queued) : 0;
  opt.manifest_session = &obs_session;
  if (!snapshot_path.empty() && snapshot_every > 0) {
    opt.snapshot_every = static_cast<std::uint64_t>(snapshot_every);
    // Atomic maintenance of the latest snapshot: write aside, then rename
    // over, so a crash mid-snapshot leaves the previous one intact.
    opt.snapshot_sink = [snapshot_path](const std::string& bytes) {
      const std::string tmp = snapshot_path + ".tmp";
      {
        std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
        if (!f) {
          std::fprintf(stderr, "flattree_svc: cannot write snapshot '%s'\n",
                       tmp.c_str());
          return;
        }
        f << bytes;
      }
      std::error_code ec;
      std::filesystem::rename(tmp, snapshot_path, ec);
      if (ec)
        std::fprintf(stderr, "flattree_svc: cannot rename snapshot into '%s': %s\n",
                     snapshot_path.c_str(), ec.message().c_str());
    };
  }

  svc::Service service(opt);
  std::istream& in = script.empty() ? std::cin : static_cast<std::istream&>(script_file);

  if (recover) {
    svc::RecoverStats rs;
    std::string error;
    if (!service.recover(have_snapshot ? &recovered_snapshot : nullptr,
                         recovered_journal, rs, error)) {
      std::fprintf(stderr, "flattree_svc recover: %s\n", error.c_str());
      return 3;
    }
    std::fprintf(stderr,
                 "flattree_svc recover: resuming after line %llu (%llu group(s) "
                 "fast-forwarded, %llu re-executed, %llu record(s))\n",
                 static_cast<unsigned long long>(rs.resume_seq),
                 static_cast<unsigned long long>(rs.groups_fast),
                 static_cast<unsigned long long>(rs.groups_reexec),
                 static_cast<unsigned long long>(rs.records));
    // The input script is the *full* session; the first resume_seq lines
    // are already durable and must not be re-answered.
    std::string skip;
    for (std::uint64_t i = 0; i < rs.resume_seq; ++i)
      if (!std::getline(in, skip)) break;
  }

  service.run(in, std::cout);
  std::cout.flush();

  if (selfcheck) {
    std::size_t v = service.selfcheck_violations();
    if (v > 0) {
      std::fprintf(stderr, "flattree_svc selfcheck: FAILED (%zu violation(s))\n", v);
      return 1;
    }
    std::fprintf(stderr, "flattree_svc selfcheck: OK (0 violations)\n");
  }
  return 0;
}
