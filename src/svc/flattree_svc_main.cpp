// flattree_svc: the stdin/stdout flat-tree controller service.
//
//   echo '{"op":"build","k":8}' | flattree_svc
//   flattree_svc --script session.jsonl --journal journal.jsonl
//
// One flattree-svc.v1 response line per input line (see DESIGN.md
// Section 10). The response stream and journal are byte-identical at any
// --threads count, with or without --metrics-json/--trace, cold or
// --incremental, and when a journal is replayed as the next --script.

#include <cstdio>
#include <fstream>
#include <iostream>

#include "exec/parallel_for.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "svc/svc.hpp"
#include "util/cli.hpp"

using namespace flattree;

int main(int argc, char** argv) {
  std::string script, journal_path, metrics_json, trace;
  std::int64_t batch = 8, threads = 0, min_augs = 32;
  double eps = 0.12, augs_per_ms = 4000.0;
  bool incremental = false, selfcheck = false;

  util::CliParser cli("flattree_svc: JSON-lines controller service (flattree-svc.v1).");
  cli.add_string("script", &script, "read requests from this file instead of stdin");
  cli.add_string("journal", &journal_path,
                 "append the canonical form of every accepted request to this file");
  cli.add_int("batch", &batch, "max consecutive read-only requests evaluated as one batch");
  cli.add_int("threads", &threads,
              "execution threads (0 = FLATTREE_THREADS env / hardware concurrency)");
  cli.add_double("eps", &eps, "Garg-Koenemann epsilon for throughput queries");
  cli.add_double("augs-per-ms", &augs_per_ms,
                 "SLO cost model: GK augmentations afforded per deadline millisecond");
  cli.add_int("min-augs", &min_augs, "SLO budget floor (augmentations)");
  cli.add_bool("incremental", &incremental,
               "reuse work across requests (delta-repaired BFS caches, warm-started "
               "MCF); output is byte-identical to cold mode");
  cli.add_bool("selfcheck", &selfcheck,
               "run the controller validity battery after every mutating request "
               "(exit 1 on any violation)");
  cli.add_string("metrics-json", &metrics_json,
                 "write a JSON run manifest to this path (also backs the 'manifest' op)");
  cli.add_string("trace", &trace, "write a JSON-lines span trace to this path");
  if (!cli.parse(argc, argv)) return cli.exit_code();

  exec::set_global_threads(threads > 0 ? static_cast<unsigned>(threads) : 0);
  obs::RunSession obs_session(argc, argv, metrics_json, trace);
  if (obs_session.active()) {
    obs::set_enabled(true);
    if (!trace.empty()) obs::start_tracing();
  }

  std::ifstream script_file;
  if (!script.empty()) {
    script_file.open(script);
    if (!script_file) {
      std::fprintf(stderr, "flattree_svc: cannot open --script '%s'\n", script.c_str());
      return 2;
    }
  }
  std::ofstream journal_file;
  if (!journal_path.empty()) {
    journal_file.open(journal_path);
    if (!journal_file) {
      std::fprintf(stderr, "flattree_svc: cannot open --journal '%s'\n",
                   journal_path.c_str());
      return 2;
    }
  }

  svc::ServiceOptions opt;
  opt.max_batch = batch > 0 ? static_cast<std::size_t>(batch) : 1;
  opt.epsilon = eps;
  opt.incremental = incremental;
  opt.selfcheck = selfcheck;
  opt.slo.augmentations_per_ms = augs_per_ms;
  opt.slo.min_augmentations = min_augs > 0 ? static_cast<std::uint64_t>(min_augs) : 0;
  opt.journal = journal_path.empty() ? nullptr : &journal_file;
  opt.manifest_session = &obs_session;

  svc::Service service(opt);
  service.run(script.empty() ? std::cin : script_file, std::cout);
  std::cout.flush();

  if (selfcheck) {
    std::size_t v = service.selfcheck_violations();
    if (v > 0) {
      std::fprintf(stderr, "flattree_svc selfcheck: FAILED (%zu violation(s))\n", v);
      return 1;
    }
    std::fprintf(stderr, "flattree_svc selfcheck: OK (0 violations)\n");
  }
  return 0;
}
