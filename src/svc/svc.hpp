#pragma once
// Umbrella header for the src/svc subsystem: the long-running flat-tree
// controller service (ISSUE 6).
//
//   protocol.hpp  flattree-svc.v1 request/response grammar and rendering
//   slo.hpp       deadline_ms -> deterministic GK augmentation budgets,
//                 certified truncated solves
//   session.hpp   per-shard state: resilient controller, traffic snapshot,
//                 warm engines (bitwise-equal to cold)
//   service.hpp   the JSON-lines loop: deterministic batching, journaling,
//                 overload shedding, snapshots, recovery, stats
//   durable/journal.hpp   CRC-framed journal v2 (records, gaps, commits)
//   durable/snapshot.hpp  canonical command-sourced state snapshots
//
// The stdin/stdout binary is flattree_svc (src/svc/flattree_svc_main.cpp);
// bench_service drives the same Service class in-process. DESIGN.md
// Section 10 documents the protocol; EXPERIMENTS.md shows how to run it.

#include "svc/durable/journal.hpp"
#include "svc/durable/snapshot.hpp"
#include "svc/protocol.hpp"
#include "svc/service.hpp"
#include "svc/session.hpp"
#include "svc/slo.hpp"
