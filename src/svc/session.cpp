#include "svc/session.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "core/expansion.hpp"
#include "design/design.hpp"
#include "inc/apl.hpp"
#include "topo/apl.hpp"
#include "workload/cluster.hpp"
#include "workload/traffic.hpp"

namespace flattree::svc {

namespace {

bool fail(RequestError& err, const char* code, std::string message) {
  err.code = code;
  err.message = std::move(message);
  return false;
}

bool parse_mode(const std::string& token, core::Mode& out) {
  if (token == "clos") {
    out = core::Mode::Clos;
  } else if (token == "global") {
    out = core::Mode::GlobalRandom;
  } else if (token == "local") {
    out = core::Mode::LocalRandom;
  } else {
    return false;
  }
  return true;
}

/// Alive servers of the component holding the most alive servers (ties:
/// smallest union-find root) — the subset APL is defined on. Same rule as
/// bench_chaos, so service numbers line up with the chaos timelines.
std::vector<topo::ServerId> largest_alive_component(const topo::Topology& t,
                                                    const std::vector<char>& stranded) {
  std::vector<graph::NodeId> parent(t.switch_count());
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](graph::NodeId v) {
    while (parent[v] != v) v = parent[v] = parent[parent[v]];
    return v;
  };
  const graph::Graph& g = t.graph();
  for (graph::LinkId l = 0; l < g.link_count(); ++l) {
    if (!g.link_live(l)) continue;
    graph::NodeId ra = find(g.link(l).a), rb = find(g.link(l).b);
    if (ra != rb) parent[ra < rb ? rb : ra] = ra < rb ? ra : rb;
  }
  std::vector<std::size_t> weight(t.switch_count(), 0);
  for (topo::ServerId s = 0; s < t.server_count(); ++s)
    if (!stranded[s]) ++weight[find(t.host(s))];
  graph::NodeId best = 0;
  for (graph::NodeId v = 1; v < t.switch_count(); ++v)
    if (weight[v] > weight[best]) best = v;
  std::vector<topo::ServerId> subset;
  for (topo::ServerId s = 0; s < t.server_count(); ++s)
    if (!stranded[s] && find(t.host(s)) == best) subset.push_back(s);
  return subset;
}

}  // namespace

bool Session::require_built(RequestError& err) const {
  if (built()) return true;
  return fail(err, "svc.session.not_built",
              "session has no plant; send a 'build' request first");
}

bool Session::parse_target_modes(const Request& req, std::vector<core::Mode>& modes,
                                 RequestError& err) const {
  const obs::JsonValue* target = req.body.find("target");
  if (target == nullptr)
    return fail(err, "svc.request.bad_field", "field 'target' is required");
  const std::uint32_t pods = ctl_->network().params().pods();
  if (target->is_string()) {
    core::Mode m;
    if (!parse_mode(target->as_string(), m))
      return fail(err, "svc.convert.bad_mode",
                  "unknown mode '" + target->as_string() + "'; valid: clos, global, local");
    modes.assign(pods, m);
    return true;
  }
  if (target->is_array()) {
    if (target->array().size() != pods)
      return fail(err, "svc.convert.bad_mode",
                  "per-pod target needs exactly " + std::to_string(pods) + " modes");
    modes.clear();
    for (const obs::JsonValue& v : target->array()) {
      core::Mode m;
      if (!v.is_string() || !parse_mode(v.as_string(), m))
        return fail(err, "svc.convert.bad_mode",
                    "per-pod target entries must be clos | global | local");
      modes.push_back(m);
    }
    return true;
  }
  return fail(err, "svc.convert.bad_mode", "field 'target': expected string or array");
}

bool Session::exec_build(const Request& req, obs::JsonValue& payload, RequestError& err) {
  bool present = false;
  std::uint64_t m64 = core::FlatTreeConfig::kProfiled, n64 = core::FlatTreeConfig::kProfiled;
  if (!req_u64(req.body, "m", 1u << 20, m64, present, err)) return false;
  if (!req_u64(req.body, "n", 1u << 20, n64, present, err)) return false;
  const std::uint32_t m = static_cast<std::uint32_t>(m64);
  const std::uint32_t n = static_cast<std::uint32_t>(n64);

  std::string mode_token = "clos";
  if (!req_string(req.body, "mode", mode_token, present, err)) return false;
  core::Mode mode;
  if (!parse_mode(mode_token, mode))
    return fail(err, "svc.convert.bad_mode",
                "unknown mode '" + mode_token + "'; valid: clos, global, local");

  std::uint64_t k = 0;
  bool has_k = false;
  if (!req_u64(req.body, "k", 1u << 16, k, has_k, err)) return false;

  std::unique_ptr<fault::ResilientController> next;
  try {
    if (has_k) {
      core::FlatTreeConfig cfg;
      cfg.k = static_cast<std::uint32_t>(k);
      cfg.m = m;
      cfg.n = n;
      next = std::make_unique<fault::ResilientController>(cfg);
    } else {
      // Generic (possibly oversubscribed) Clos layout: all eight layout
      // fields are required.
      std::uint64_t v[8];
      const char* keys[8] = {"pods", "d", "r", "h", "servers_per_edge",
                             "edge_ports", "agg_ports", "core_ports"};
      for (int i = 0; i < 8; ++i) {
        bool has = false;
        if (!req_u64(req.body, keys[i], 1u << 20, v[i], has, err)) return false;
        if (!has)
          return fail(err, "svc.build.bad_params",
                      std::string("build needs 'k' or all of pods/d/r/h/"
                                  "servers_per_edge/edge_ports/agg_ports/core_ports "
                                  "(missing '") + keys[i] + "')");
      }
      topo::ClosParams params = topo::ClosParams::make_generic(
          static_cast<std::uint32_t>(v[0]), static_cast<std::uint32_t>(v[1]),
          static_cast<std::uint32_t>(v[2]), static_cast<std::uint32_t>(v[3]),
          static_cast<std::uint32_t>(v[4]), static_cast<std::uint32_t>(v[5]),
          static_cast<std::uint32_t>(v[6]), static_cast<std::uint32_t>(v[7]));
      next = std::make_unique<fault::ResilientController>(
          core::FlatTreeNetwork(params, m, n));
    }
  } catch (const std::invalid_argument& e) {
    return fail(err, "svc.build.bad_params", e.what());
  }

  std::size_t steps = 0;
  if (mode != core::Mode::Clos) {
    next->begin_conversion(mode);
    while (next->conversion_in_flight()) {
      std::size_t applied = next->advance(next->pending_micro_txs());
      steps += applied;
      if (applied == 0) break;
    }
  }

  // Commit: replace the plant, drop the old traffic snapshot and engines.
  ctl_ = std::move(next);
  demands_.clear();
  total_demand_ = 0.0;
  apsp_.reset();
  warm_.reset();

  const topo::ClosParams& p = ctl_->network().params();
  put(payload, "pods", jint(p.pods()));
  put(payload, "switches", jint(p.total_switches()));
  put(payload, "servers", jint(p.total_servers()));
  put(payload, "converters", jint(static_cast<std::int64_t>(ctl_->network().converters().size())));
  put(payload, "mode", jstr(mode_token));
  put(payload, "steps", jint(static_cast<std::int64_t>(steps)));
  return true;
}

bool Session::exec_traffic(const Request& req, obs::JsonValue& payload, RequestError& err) {
  if (!require_built(err)) return false;
  const std::uint32_t servers = ctl_->network().params().total_servers();

  std::vector<mcf::ServerDemand> next;
  if (const obs::JsonValue* list = req.body.find("demands"); list != nullptr) {
    if (!list->is_array())
      return fail(err, "svc.request.bad_field", "field 'demands': expected an array");
    next.reserve(list->array().size());
    for (std::size_t i = 0; i < list->array().size(); ++i) {
      const obs::JsonValue& d = list->array()[i];
      const obs::JsonValue* src = d.find("src");
      const obs::JsonValue* dst = d.find("dst");
      const obs::JsonValue* demand = d.find("demand");
      std::string why;
      if (!d.is_object() || src == nullptr || dst == nullptr || demand == nullptr)
        why = "needs object with src, dst, demand";
      else if (!src->is_int() || !dst->is_int() || !demand->is_number())
        why = "src/dst must be integers, demand a number";
      else if (src->as_int() < 0 || src->as_int() >= servers || dst->as_int() < 0 ||
               dst->as_int() >= servers)
        why = "src/dst out of range [0, " + std::to_string(servers) + ")";
      else if (src->as_int() == dst->as_int())
        why = "src == dst";
      else if (!(demand->as_number() > 0.0))
        why = "demand must be > 0";
      if (!why.empty())
        return fail(err, "svc.traffic.bad_demand",
                    "demands[" + std::to_string(i) + "]: " + why);
      next.push_back({static_cast<topo::ServerId>(src->as_int()),
                      static_cast<topo::ServerId>(dst->as_int()), demand->as_number()});
    }
  } else {
    // Generated workload: cluster placement + pattern, seeded.
    bool present = false;
    // Default cluster size clamps to the plant so small topologies get a
    // non-empty workload instead of silently rounding down to 0 clusters.
    std::uint64_t cluster = std::min<std::uint64_t>(40, servers), seed = 1;
    std::string pattern_token = "broadcast", placement_token = "none";
    if (!req_u64(req.body, "cluster", servers, cluster, present, err)) return false;
    if (cluster == 0) return fail(err, "svc.request.bad_field", "field 'cluster': must be >= 1");
    if (!req_u64(req.body, "seed", ~std::uint64_t{0} >> 1, seed, present, err)) return false;
    if (!req_string(req.body, "pattern", pattern_token, present, err)) return false;
    if (!req_string(req.body, "placement", placement_token, present, err)) return false;

    workload::Pattern pattern;
    if (pattern_token == "broadcast") {
      pattern = workload::Pattern::Broadcast;
    } else if (pattern_token == "incast") {
      pattern = workload::Pattern::Incast;
    } else if (pattern_token == "all_to_all") {
      pattern = workload::Pattern::AllToAll;
    } else {
      return fail(err, "svc.traffic.bad_pattern",
                  "unknown pattern '" + pattern_token +
                      "'; valid: broadcast, incast, all_to_all");
    }
    workload::Placement placement;
    if (placement_token == "locality") {
      placement = workload::Placement::Locality;
    } else if (placement_token == "weak") {
      placement = workload::Placement::WeakLocality;
    } else if (placement_token == "none") {
      placement = workload::Placement::NoLocality;
    } else {
      return fail(err, "svc.traffic.bad_pattern",
                  "unknown placement '" + placement_token +
                      "'; valid: locality, weak, none");
    }

    util::Rng rng(seed);
    auto clusters = workload::make_clusters(servers, static_cast<std::uint32_t>(cluster),
                                            placement,
                                            ctl_->network().params().servers_per_pod(), rng);
    next = workload::cluster_traffic(clusters, pattern, rng);
  }

  demands_ = std::move(next);
  total_demand_ = 0.0;
  for (const auto& d : demands_) total_demand_ += d.demand;

  put(payload, "demands", jint(static_cast<std::int64_t>(demands_.size())));
  put(payload, "total", jdouble(total_demand_));
  return true;
}

bool Session::exec_fault(const Request& req, obs::JsonValue& payload, EvalTally& tally,
                         RequestError& err) {
  if (!require_built(err)) return false;
  const obs::JsonValue* list = req.body.find("events");
  if (list == nullptr || !list->is_array())
    return fail(err, "svc.request.bad_field", "field 'events' (array) is required");

  // Parse every event first; nothing is applied until the whole batch
  // validates against a dry-run copy of the fault state, so a rejected
  // request leaves the session byte-identical to before.
  std::vector<fault::FaultEvent> events;
  events.reserve(list->array().size());
  for (std::size_t i = 0; i < list->array().size(); ++i) {
    const obs::JsonValue& e = list->array()[i];
    auto bad = [&](const std::string& why) {
      return fail(err, "svc.fault.bad_event", "events[" + std::to_string(i) + "]: " + why);
    };
    if (!e.is_object()) return bad("expected an object");
    const obs::JsonValue* t = e.find("t");
    const obs::JsonValue* kind = e.find("kind");
    const obs::JsonValue* a = e.find("a");
    const obs::JsonValue* b = e.find("b");
    if (t == nullptr || !t->is_number()) return bad("field 't' (number) is required");
    if (kind == nullptr || !kind->is_string()) return bad("field 'kind' (string) is required");
    if (a == nullptr || !a->is_int() || a->as_int() < 0)
      return bad("field 'a' (non-negative integer) is required");
    fault::FaultEvent ev;
    ev.time = t->as_number();
    if (!fault::parse_fault_kind(kind->as_string(), ev.kind))
      return bad("unknown kind '" + kind->as_string() + "'");
    ev.a = static_cast<fault::NodeId>(a->as_int());
    ev.b = 0;
    const bool link = ev.kind == fault::FaultKind::LinkDown ||
                      ev.kind == fault::FaultKind::LinkUp;
    if (link) {
      if (b == nullptr || !b->is_int() || b->as_int() < 0)
        return bad("link events need field 'b' (non-negative integer)");
      ev.b = static_cast<fault::NodeId>(b->as_int());
    } else if (b != nullptr) {
      return bad("field 'b' is only valid on link events");
    }
    events.push_back(ev);
  }

  double last = ctl_->now();
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].time < last)
      return fail(err, "svc.fault.time_regression",
                  "events[" + std::to_string(i) + "]: time " +
                      obs::json_number(events[i].time) + " is before " +
                      obs::json_number(last));
    last = events[i].time;
  }

  fault::FaultState probe = ctl_->fault_state();
  for (std::size_t i = 0; i < events.size(); ++i) {
    try {
      probe.apply(events[i]);
    } catch (const std::invalid_argument& e) {
      return fail(err, "svc.fault.bad_event",
                  "events[" + std::to_string(i) + "]: " + e.what());
    }
  }

  // 'advance' must validate before any event is applied: a rejected
  // request may not mutate the session (atomicity invariant above).
  bool advance_present = false;
  std::uint64_t advance = 0;
  if (!req_u64(req.body, "advance", 1u << 30, advance, advance_present, err)) return false;

  std::size_t changed = 0, recovery_steps = 0;
  std::uint32_t replans = 0;
  bool rolled_back = false;
  for (const fault::FaultEvent& e : events) {
    fault::EventOutcome out = ctl_->on_event(e);
    changed += out.changed ? 1 : 0;
    recovery_steps += out.steps_applied;
    replans += out.replans;
    rolled_back = rolled_back || out.rolled_back;
  }
  tally.fault_events += events.size();

  std::size_t advanced = advance_present ? ctl_->advance(advance) : 0;

  const fault::FaultState& fs = ctl_->fault_state();
  put(payload, "events", jint(static_cast<std::int64_t>(events.size())));
  put(payload, "changed", jint(static_cast<std::int64_t>(changed)));
  put(payload, "recovery_steps", jint(static_cast<std::int64_t>(recovery_steps)));
  put(payload, "replans", jint(replans));
  put(payload, "rolled_back", jbool(rolled_back));
  put(payload, "advanced", jint(static_cast<std::int64_t>(advanced)));
  put(payload, "down_switches", jint(static_cast<std::int64_t>(fs.down_switch_count())));
  put(payload, "down_pairs", jint(static_cast<std::int64_t>(fs.down_pair_count())));
  put(payload, "stuck", jint(static_cast<std::int64_t>(fs.stuck_converter_count())));
  put(payload, "stranded", jint(static_cast<std::int64_t>(ctl_->stranded_servers().size())));
  return true;
}

bool Session::exec_convert(const Request& req, obs::JsonValue& payload, RequestError& err) {
  if (!require_built(err)) return false;

  std::uint64_t advance = 0;
  bool has_advance = false;
  if (!req_u64(req.body, "advance", 1u << 30, advance, has_advance, err)) return false;

  const bool has_target = req.body.find("target") != nullptr;
  if (!has_target && !has_advance)
    return fail(err, "svc.request.bad_field", "convert needs 'target' and/or 'advance'");

  bool began = false;
  if (has_target) {
    if (ctl_->conversion_in_flight())
      return fail(err, "svc.convert.in_flight",
                  "a conversion is already in flight; drive it with 'advance' or "
                  "query hypotheticals with 'what_if'");
    std::vector<core::Mode> modes;
    if (!parse_target_modes(req, modes, err)) return false;
    ctl_->begin_conversion(modes);
    began = true;
  }

  std::size_t applied = 0;
  if (has_advance) {
    applied = ctl_->advance(advance);
  } else {
    // No step cap: drain to completion (stops early only on an abort,
    // which parks the conversion behind the event backoff).
    while (ctl_->conversion_in_flight()) {
      std::size_t step = ctl_->advance(ctl_->pending_micro_txs());
      applied += step;
      if (step == 0) break;
    }
  }

  put(payload, "began", jbool(began));
  put(payload, "applied", jint(static_cast<std::int64_t>(applied)));
  put(payload, "in_flight", jbool(ctl_->conversion_in_flight()));
  put(payload, "pending", jint(static_cast<std::int64_t>(ctl_->pending_micro_txs())));
  put(payload, "stranded", jint(static_cast<std::int64_t>(ctl_->stranded_servers().size())));
  return true;
}

bool Session::exec_expand(const Request& req, obs::JsonValue& payload, RequestError& err) {
  if (!require_built(err)) return false;

  bool present = false;
  std::uint64_t pods = 0;
  if (!req_u64(req.body, "pods", 1u << 16, pods, present, err)) return false;
  if (!present || pods == 0)
    return fail(err, "svc.request.bad_field", "field 'pods' (integer >= 1) is required");
  bool apply = false;
  if (!req_bool(req.body, "apply", apply, present, err)) return false;

  core::ExpansionPlan plan;
  try {
    plan = core::plan_expansion(ctl_->network().params(),
                                static_cast<std::uint32_t>(pods),
                                ctl_->network().config().chain);
  } catch (const std::invalid_argument& e) {
    return fail(err, "svc.expand.infeasible", e.what());
  }

  if (apply) {
    // Expansion is physical work: refuse while a conversion is mid-plan or
    // faults are outstanding — the expanded plant starts from a clean,
    // all-up Clos assignment.
    if (ctl_->conversion_in_flight())
      return fail(err, "svc.expand.in_flight",
                  "cannot apply an expansion while a conversion is in flight");
    if (!ctl_->fault_state().clean())
      return fail(err, "svc.expand.faults_outstanding",
                  "cannot apply an expansion while faults are outstanding");
    core::FlatTreeNetwork expanded = core::expand(ctl_->network(), plan);
    ctl_ = std::make_unique<fault::ResilientController>(std::move(expanded),
                                                        ctl_->options());
    // Server ids changed: the old traffic snapshot and engines are void.
    demands_.clear();
    total_demand_ = 0.0;
    apsp_.reset();
    warm_.reset();
  }

  put(payload, "pods_added", jint(plan.pods_added));
  put(payload, "new_switches", jint(static_cast<std::int64_t>(plan.new_switches)));
  put(payload, "new_servers", jint(static_cast<std::int64_t>(plan.new_servers)));
  put(payload, "new_core_links", jint(static_cast<std::int64_t>(plan.new_core_links)));
  put(payload, "side_bundles_spliced",
      jint(static_cast<std::int64_t>(plan.side_bundles_spliced)));
  put(payload, "pods_after", jint(plan.after.pods()));
  put(payload, "applied", jbool(apply));
  if (apply) {
    put(payload, "switches", jint(ctl_->network().params().total_switches()));
    put(payload, "servers", jint(ctl_->network().params().total_servers()));
  }
  return true;
}

void Session::metric_block(const Request& req, const fault::DegradeResult& d,
                           bool sequential, obs::JsonValue& payload, EvalTally& tally) {
  const topo::Topology& t = d.topo;
  std::vector<char> stranded(t.server_count(), 0);
  for (topo::ServerId s : d.stranded) stranded[s] = 1;

  const fault::FaultState& fs = ctl_->fault_state();
  put(payload, "down_switches", jint(static_cast<std::int64_t>(fs.down_switch_count())));
  put(payload, "down_pairs", jint(static_cast<std::int64_t>(fs.down_pair_count())));
  put(payload, "stuck", jint(static_cast<std::int64_t>(fs.stuck_converter_count())));
  put(payload, "stranded", jint(static_cast<std::int64_t>(d.stranded.size())));

  std::vector<topo::ServerId> subset = largest_alive_component(t, stranded);
  put(payload, "alive", jint(static_cast<std::int64_t>(subset.size())));

  double apl = 0.0;
  if (subset.size() >= 2) {
    if (sequential && opt_.incremental) {
      // Delta-repaired BFS trees; bitwise-equal to the cold path, so the
      // parallel batch workers (always cold) emit the same bytes.
      if (apsp_ == nullptr) {
        inc::DynamicApspOptions aopt;
        aopt.churn_threshold = 0.75;  // fault bursts touch many trees at once
        apsp_ = std::make_unique<inc::DynamicApsp>(t.graph(), aopt);
      } else {
        apsp_->retarget(t.graph());
      }
      apl = inc::server_apl_subset(*apsp_, t, subset).average;
    } else {
      apl = topo::server_apl_subset(t, subset).average;
    }
  }
  put(payload, "apl", jdouble(apl));

  bool want_lambda = true;
  if (const obs::JsonValue* v = req.body.find("lambda"); v != nullptr && v->is_bool())
    want_lambda = v->as_bool();
  if (!want_lambda || demands_.empty()) return;

  std::vector<mcf::ServerDemand> alive;
  double alive_demand = 0.0;
  for (const auto& dem : demands_)
    if (!stranded[dem.src] && !stranded[dem.dst]) {
      alive.push_back(dem);
      alive_demand += dem.demand;
    }
  double alive_frac = total_demand_ > 0.0 ? alive_demand / total_demand_ : 1.0;
  auto commodities = mcf::aggregate_to_switches(t, alive);

  const std::uint64_t budget = budget_augmentations(opt_.slo, req.deadline_ms);
  if (commodities.empty()) {
    put(payload, "lambda_lower", jdouble(0.0));
    put(payload, "lambda_upper", jdouble(0.0));
    put(payload, "served", jdouble(alive.empty() ? 0.0 : alive_frac));
    put(payload, "truncated", jbool(false));
    put(payload, "certified", jbool(true));
    put(payload, "budget", jint(static_cast<std::int64_t>(budget)));
    return;
  }

  inc::McfWarmCache* warm = nullptr;
  if (sequential && opt_.incremental) {
    if (warm_ == nullptr) {
      inc::McfWarmCacheOptions wopt;
      wopt.exact_only = true;  // resumes must be bitwise-identical to cold
      warm_ = std::make_unique<inc::McfWarmCache>(wopt);
    }
    warm = warm_.get();
  }
  SloSolve s = solve_with_budget(t.graph(), commodities, opt_.epsilon, budget, warm);
  tally.solves += 1;
  tally.truncated += s.result.truncated ? 1 : 0;
  tally.certified += s.certified ? 1 : 0;

  put(payload, "lambda_lower", jdouble(s.result.lambda_lower));
  put(payload, "lambda_upper", jdouble(s.result.lambda_upper));
  put(payload, "served", jdouble(alive_frac * s.result.served_fraction));
  put(payload, "truncated", jbool(s.result.truncated));
  put(payload, "certified", jbool(s.certified));
  put(payload, "budget", jint(static_cast<std::int64_t>(budget)));
}

bool Session::exec_query(const Request& req, bool sequential, obs::JsonValue& payload,
                         EvalTally& tally, RequestError& err) {
  if (!require_built(err)) return false;
  metric_block(req, ctl_->degraded(), sequential, payload, tally);
  return true;
}

bool Session::exec_what_if(const Request& req, bool sequential, obs::JsonValue& payload,
                           EvalTally& tally, RequestError& err) {
  if (!require_built(err)) return false;
  std::vector<core::Mode> modes;
  if (!parse_target_modes(req, modes, err)) return false;

  // Pure hypothetical: the fault-avoiding configuration the controller
  // *would* steer toward, materialized and degraded, without touching the
  // live assignment — legal even mid-conversion.
  std::vector<core::ConverterConfig> cfgs = ctl_->fault_aware_target(modes);
  const std::vector<core::ConverterConfig>& live = ctl_->current_configs();
  std::size_t steps = 0;
  for (std::size_t i = 0; i < cfgs.size(); ++i)
    if (cfgs[i] != live[i]) ++steps;

  fault::DegradeResult d =
      fault::degrade(ctl_->network().materialize(cfgs), ctl_->fault_state());
  put(payload, "steps", jint(static_cast<std::int64_t>(steps)));
  metric_block(req, d, sequential, payload, tally);
  return true;
}

bool Session::exec_design(const Request& req, obs::JsonValue& payload,
                          EvalTally& tally, RequestError& err) {
  if (!require_built(err)) return false;

  std::uint64_t seed = 1, iters = 16;
  bool present = false;
  if (!req_u64(req.body, "seed", ~std::uint64_t{0}, seed, present, err)) return false;
  if (!req_u64(req.body, "iters", 4096, iters, present, err)) return false;

  design::WorkloadMix mix = design::WorkloadMix::defaults();
  mix.seed = seed;
  mix.epsilon = opt_.epsilon;
  if (const obs::JsonValue* list = req.body.find("mix"); list != nullptr) {
    if (!list->is_array() || list->array().empty())
      return fail(err, "svc.design.bad_mix",
                  "field 'mix' must be a non-empty array of components");
    mix.components.clear();
    for (std::size_t i = 0; i < list->array().size(); ++i) {
      const obs::JsonValue& e = list->array()[i];
      auto bad = [&](const std::string& why) {
        return fail(err, "svc.design.bad_mix",
                    "mix[" + std::to_string(i) + "]: " + why);
      };
      if (!e.is_object()) return bad("expected an object");
      design::Component comp;
      const obs::JsonValue* kind = e.find("kind");
      if (kind == nullptr || !kind->is_string())
        return bad("field 'kind' (string) is required");
      try {
        comp.kind = design::parse_pattern_kind(kind->as_string());
        if (const obs::JsonValue* v = e.find("affinity"); v != nullptr) {
          if (!v->is_string()) return bad("field 'affinity' must be a string");
          comp.affinity = design::parse_affinity(v->as_string());
        }
      } catch (const std::runtime_error& ex) {
        return bad(ex.what());
      }
      if (const obs::JsonValue* v = e.find("cluster"); v != nullptr) {
        if (!v->is_int() || v->as_int() < 2)
          return bad("field 'cluster' must be an integer >= 2");
        comp.cluster = static_cast<std::uint32_t>(v->as_int());
      }
      if (const obs::JsonValue* v = e.find("count"); v != nullptr) {
        if (!v->is_int() || v->as_int() < 0)
          return bad("field 'count' must be a non-negative integer");
        comp.count = static_cast<std::uint32_t>(v->as_int());
      }
      if (const obs::JsonValue* v = e.find("placement"); v != nullptr) {
        if (!v->is_string()) return bad("field 'placement' must be a string");
        const std::string& token = v->as_string();
        if (token == "locality") {
          comp.placement = workload::Placement::Locality;
        } else if (token == "weak") {
          comp.placement = workload::Placement::WeakLocality;
        } else if (token == "none") {
          comp.placement = workload::Placement::NoLocality;
        } else {
          return bad("unknown placement '" + token + "'; valid: locality, weak, none");
        }
      }
      if (const obs::JsonValue* v = e.find("weight"); v != nullptr) {
        if (!v->is_number() || v->as_number() <= 0.0)
          return bad("field 'weight' must be a positive number");
        comp.weight = v->as_number();
      }
      if (const obs::JsonValue* v = e.find("skew"); v != nullptr) {
        if (!v->is_number() || v->as_number() <= 0.0)
          return bad("field 'skew' must be a positive number");
        comp.skew = v->as_number();
      }
      mix.components.push_back(comp);
    }
  }

  // Deadline -> iteration budget; the applied count is deterministic (a
  // pure function of the request), never wall-clock.
  const std::uint64_t budget = budget_iterations(opt_.slo, req.deadline_ms);
  const std::uint64_t applied = budget > 0 ? std::min(iters, budget) : iters;

  design::SearchOptions sopt;
  sopt.seed = seed;
  sopt.iterations = static_cast<std::uint32_t>(applied);
  design::SearchResult result = design::search(ctl_->network(), mix, sopt);

  double uniform_best = 0.0;
  core::Mode uniform_mode = core::Mode::Clos;
  std::uint64_t uniforms_certified = 0;
  for (const design::UniformScore& u : result.uniforms) {
    if (u.score.objective > uniform_best) {
      uniform_best = u.score.objective;
      uniform_mode = u.mode;
    }
    if (u.certified) ++uniforms_certified;
  }

  // Work accounting: 3 uniform baselines + the initial warm score + one
  // warm score per decided move + the cold certified rescore.
  tally.solves += 3 + 1 + result.accepted + result.rejected + 1;
  tally.certified += uniforms_certified + (result.certified ? 1 : 0);

  auto mode_token = [](core::Mode m) {
    switch (m) {
      case core::Mode::Clos: return "clos";
      case core::Mode::GlobalRandom: return "global";
      case core::Mode::LocalRandom:
      default: return "local";
    }
  };

  put(payload, "pods", jint(static_cast<std::int64_t>(result.best.pods())));
  put(payload, "iters", jint(static_cast<std::int64_t>(applied)));
  put(payload, "budget", jint(static_cast<std::int64_t>(budget)));
  put(payload, "accepted", jint(static_cast<std::int64_t>(result.accepted)));
  put(payload, "rejected", jint(static_cast<std::int64_t>(result.rejected)));
  put(payload, "skipped", jint(static_cast<std::int64_t>(result.skipped)));
  put(payload, "objective", jdouble(result.best_cold.objective));
  put(payload, "lambda_upper", jdouble(result.best_cold.lambda_upper));
  put(payload, "apl", jdouble(result.best_cold.apl));
  put(payload, "demands", jint(static_cast<std::int64_t>(result.best_cold.demands)));
  put(payload, "certified", jbool(result.certified));
  put(payload, "uniform", jstr(mode_token(uniform_mode)));
  put(payload, "uniform_objective", jdouble(uniform_best));
  put(payload, "beats_uniform",
      jbool(result.best_cold.objective > uniform_best));
  obs::JsonValue layout = obs::JsonValue::make_array();
  for (core::Mode m : result.best.pod_modes())
    layout.array().push_back(obs::JsonValue::make_string(mode_token(m)));
  put(payload, "layout", std::move(layout));
  obs::JsonValue moves = obs::JsonValue::make_array();
  for (const design::AcceptedMove& m : result.accepted_moves)
    moves.array().push_back(obs::JsonValue::make_string(design::to_string(m.move)));
  put(payload, "moves", std::move(moves));
  return true;
}

}  // namespace flattree::svc
