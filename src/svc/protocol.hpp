#pragma once
// flattree-svc.v1: the deterministic JSON-lines request protocol of the
// long-running controller service (ISSUE 6 tentpole; DESIGN.md Section 10
// has the full grammar).
//
// One request per input line, one response per request, in input order.
// Every request is a JSON object with an "op" member; the optional
// envelope fields are shared by all ops:
//
//   "id"          any scalar, echoed verbatim in the response
//   "session"     integer shard selector in [0, kMaxSessions)
//   "deadline_ms" per-request SLO budget (> 0; 0/absent = unlimited),
//                 mapped to a GK augmentation budget by svc::SloPolicy
//
// Responses open with a fixed key order — schema, seq, id (when present),
// op, ok — so response streams are comparable byte for byte across runs.
// seq is the 1-based input line number: blank or malformed lines consume a
// seq and produce an error response, keeping the 1:1 line correspondence.
//
// Determinism contract: parsing uses obs::json_parse (strict, stable error
// codes, duplicate keys and non-finite numbers rejected) and the journal
// stores the *canonical* re-rendering of each accepted request
// (JsonValue::to_json, a fixpoint under parse), so a journal replayed as a
// script reproduces the same state trajectory byte for byte.

#include <cstdint>
#include <string>

#include "obs/json.hpp"

namespace flattree::svc {

/// Session shards per service instance ("session" field range).
inline constexpr std::uint32_t kMaxSessions = 32;

/// Request operations. Read-only ops (read_only()) may be evaluated
/// concurrently inside a batch; every other op is a batch boundary.
enum class Op : std::uint8_t {
  Hello,     ///< protocol handshake, no state touched
  Build,     ///< construct a session's plant (fat-tree k or generic Clos)
  Traffic,   ///< install the session's traffic-matrix snapshot
  Fault,     ///< inject fault::FaultEvents (atomically validated)
  Convert,   ///< begin/advance a staged conversion
  WhatIf,    ///< hypothetical conversion query (non-mutating)
  Expand,    ///< plan (and optionally apply) a pod expansion
  Query,     ///< degraded-state metrics: stranded/APL/lambda
  Stats,     ///< deterministic service counters
  Manifest,  ///< dump the obs metrics manifest to a file
  Design,    ///< conversion-plan search for a declared workload mix
};

/// Number of Op enum values (payload tables are sized by this).
inline constexpr std::size_t kOpCount = 11;

/// Stable lowercase wire token ("hello", "what_if", ...).
const char* to_string(Op op);
/// Inverse of to_string; false when `token` names no op.
bool parse_op(const std::string& token, Op& out);
/// True for ops that never mutate service or session state (Hello, Query,
/// WhatIf, Design) — the batchable subset.
bool read_only(Op op);

/// Why a line was rejected. `code` is stable and namespaced: "json.*" from
/// the parser, "svc.request.*" for envelope violations, "svc.<op>.*" for
/// op-specific failures. line/column are only set for parse errors (1-based
/// within the request line; 0 = not applicable).
struct RequestError {
  std::string code;
  std::string message;
  std::size_t line = 0;
  std::size_t column = 0;
};

/// A parsed, envelope-validated request.
struct Request {
  Op op = Op::Hello;
  std::uint64_t seq = 0;     ///< 1-based input line number
  std::string id_json;       ///< canonical "id" rendering; empty = absent
  std::uint32_t session = 0; ///< shard index, default 0
  double deadline_ms = 0.0;  ///< 0 = no deadline
  obs::JsonValue body;       ///< the full request object
  std::string canonical;     ///< canonical rendering (the journal line)
};

/// Parses one request line and validates the envelope fields. On failure
/// returns false with `err` filled; `out` is unspecified.
bool parse_request(const std::string& line, std::uint64_t seq, Request& out,
                   RequestError& err);

/// Success envelope: {"schema","seq","id"?,"op","ok":true, ...payload
/// members in stored order...}. `payload` must be an Object.
std::string render_response(const Request& req, const obs::JsonValue& payload);
/// Error envelope for a parsed request (id/op echoed).
std::string render_error(const Request& req, const RequestError& err);
/// Error envelope for a line that never became a request (no id/op known).
std::string render_line_error(std::uint64_t seq, const RequestError& err);

// -- payload-building shorthand ---------------------------------------------

/// Integer payload value.
inline obs::JsonValue jint(std::int64_t v) { return obs::JsonValue::make_int(v); }
/// Double payload value (canonical shortest-round-trip spelling).
inline obs::JsonValue jdouble(double v) { return obs::JsonValue::make_double(v); }
/// Boolean payload value.
inline obs::JsonValue jbool(bool v) { return obs::JsonValue::make_bool(v); }
/// String payload value (escaped at render time).
inline obs::JsonValue jstr(std::string v) {
  return obs::JsonValue::make_string(std::move(v));
}
/// Appends `key: v` to an object payload, preserving insertion order.
inline void put(obs::JsonValue& obj, std::string key, obs::JsonValue v) {
  obj.object().emplace_back(std::move(key), std::move(v));
}

// -- body-field extraction ---------------------------------------------------
//
// Each helper returns false (filling `err` with svc.request.bad_field) when
// the field exists with the wrong kind or out-of-range value; an absent
// field succeeds with `present = false` and leaves `out` untouched, so
// callers keep their defaults.

bool req_u64(const obs::JsonValue& body, const char* key, std::uint64_t max,
             std::uint64_t& out, bool& present, RequestError& err);
/// Optional boolean field; see the block comment above.
bool req_bool(const obs::JsonValue& body, const char* key, bool& out, bool& present,
              RequestError& err);
/// Optional string field; see the block comment above.
bool req_string(const obs::JsonValue& body, const char* key, std::string& out,
                bool& present, RequestError& err);

}  // namespace flattree::svc
