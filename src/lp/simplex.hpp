#pragma once
// Dense two-phase primal simplex LP solver.
//
// The paper computes throughput by solving the maximum concurrent
// multicommodity flow LP. This solver provides *exact* optima for small
// instances: it cross-validates the Garg-Koenemann FPTAS (src/mcf) and
// powers unit tests with closed-form answers. It is a textbook tableau
// implementation — O(rows * cols) per pivot — deliberately favoring
// clarity and numeric robustness (two-phase, Bland's rule fallback) over
// scale; full-size experiments use the FPTAS.
//
// Problem form:  maximize c.x  subject to  rows (<=, >=, ==),  x >= 0.

#include <cstdint>
#include <string>
#include <vector>

namespace flattree::lp {

enum class RowType : std::uint8_t { Le, Ge, Eq };
enum class LpStatus : std::uint8_t { Optimal, Infeasible, Unbounded, IterationLimit };

const char* to_string(LpStatus status);

class LpProblem {
 public:
  /// Creates a problem with `num_vars` variables, all objective
  /// coefficients 0 (set via set_objective).
  explicit LpProblem(std::size_t num_vars);

  std::size_t num_vars() const { return objective_.size(); }
  std::size_t num_rows() const { return rows_.size(); }

  void set_objective(std::size_t var, double coeff);
  double objective(std::size_t var) const { return objective_.at(var); }

  /// Adds a dense constraint row; `coeffs` must have num_vars entries.
  void add_row(const std::vector<double>& coeffs, RowType type, double rhs);

  /// Adds a sparse constraint row given (var, coeff) terms.
  void add_row_sparse(const std::vector<std::pair<std::size_t, double>>& terms,
                      RowType type, double rhs);

  const std::vector<double>& row_coeffs(std::size_t row) const;
  RowType row_type(std::size_t row) const;
  double row_rhs(std::size_t row) const;

 private:
  std::vector<double> objective_;
  std::vector<std::vector<double>> rows_;
  std::vector<RowType> types_;
  std::vector<double> rhs_;
};

struct LpOptions {
  std::size_t max_iterations = 50'000;
  double eps = 1e-9;  ///< pivot / feasibility tolerance
};

struct LpSolution {
  LpStatus status = LpStatus::Infeasible;
  double objective = 0.0;
  std::vector<double> x;
};

/// Solves the problem; `x` is populated only for Optimal.
LpSolution solve(const LpProblem& problem, const LpOptions& options = {});

}  // namespace flattree::lp
