#include "lp/simplex.hpp"

#include <cmath>
#include <stdexcept>

namespace flattree::lp {

const char* to_string(LpStatus status) {
  switch (status) {
    case LpStatus::Optimal: return "optimal";
    case LpStatus::Infeasible: return "infeasible";
    case LpStatus::Unbounded: return "unbounded";
    case LpStatus::IterationLimit: return "iteration-limit";
  }
  return "?";
}

LpProblem::LpProblem(std::size_t num_vars) : objective_(num_vars, 0.0) {}

void LpProblem::set_objective(std::size_t var, double coeff) {
  objective_.at(var) = coeff;
}

void LpProblem::add_row(const std::vector<double>& coeffs, RowType type, double rhs) {
  if (coeffs.size() != num_vars())
    throw std::invalid_argument("LpProblem::add_row: coefficient count mismatch");
  rows_.push_back(coeffs);
  types_.push_back(type);
  rhs_.push_back(rhs);
}

void LpProblem::add_row_sparse(const std::vector<std::pair<std::size_t, double>>& terms,
                               RowType type, double rhs) {
  std::vector<double> coeffs(num_vars(), 0.0);
  for (auto [var, coeff] : terms) coeffs.at(var) += coeff;
  add_row(coeffs, type, rhs);
}

const std::vector<double>& LpProblem::row_coeffs(std::size_t row) const {
  return rows_.at(row);
}
RowType LpProblem::row_type(std::size_t row) const { return types_.at(row); }
double LpProblem::row_rhs(std::size_t row) const { return rhs_.at(row); }

namespace {

/// Dense tableau simplex core. Columns: structural vars, then slack/surplus,
/// then artificials, then RHS.
class Tableau {
 public:
  Tableau(const LpProblem& p, const LpOptions& opt) : opt_(opt) {
    const std::size_t m = p.num_rows();
    n_struct_ = p.num_vars();
    std::size_t slacks = 0, artificials = 0;
    for (std::size_t r = 0; r < m; ++r) {
      RowType t = normalized_type(p, r);
      if (t != RowType::Eq) ++slacks;
      if (t != RowType::Le) ++artificials;
    }
    n_slack_ = slacks;
    n_art_ = artificials;
    cols_ = n_struct_ + n_slack_ + n_art_ + 1;  // +1 for RHS
    a_.assign(m, std::vector<double>(cols_, 0.0));
    basis_.assign(m, 0);

    std::size_t slack_cursor = n_struct_;
    std::size_t art_cursor = n_struct_ + n_slack_;
    for (std::size_t r = 0; r < m; ++r) {
      double sign = p.row_rhs(r) < 0 ? -1.0 : 1.0;
      RowType t = normalized_type(p, r);
      for (std::size_t v = 0; v < n_struct_; ++v) a_[r][v] = sign * p.row_coeffs(r)[v];
      a_[r][cols_ - 1] = sign * p.row_rhs(r);
      if (t == RowType::Le) {
        a_[r][slack_cursor] = 1.0;
        basis_[r] = slack_cursor++;
      } else if (t == RowType::Ge) {
        a_[r][slack_cursor] = -1.0;
        ++slack_cursor;
        a_[r][art_cursor] = 1.0;
        basis_[r] = art_cursor++;
      } else {
        a_[r][art_cursor] = 1.0;
        basis_[r] = art_cursor++;
      }
    }
  }

  LpSolution run(const LpProblem& p) {
    const std::size_t m = a_.size();
    LpSolution sol;
    if (n_art_ > 0) {
      // Phase 1: maximize -(sum of artificials).
      std::vector<double> cost(cols_ - 1, 0.0);
      for (std::size_t v = n_struct_ + n_slack_; v < cols_ - 1; ++v) cost[v] = -1.0;
      LpStatus st = optimize(cost, /*forbid_art=*/false);
      if (st == LpStatus::IterationLimit) {
        sol.status = st;
        return sol;
      }
      double art_sum = 0.0;
      for (std::size_t r = 0; r < m; ++r)
        if (basis_[r] >= n_struct_ + n_slack_) art_sum += a_[r][cols_ - 1];
      if (art_sum > 1e-7) {
        sol.status = LpStatus::Infeasible;
        return sol;
      }
      // Pivot remaining (degenerate) artificials out where possible; rows
      // with no eligible pivot are redundant and their artificial simply
      // never re-enters (phase 2 forbids artificial columns).
      for (std::size_t r = 0; r < m; ++r) {
        if (basis_[r] < n_struct_ + n_slack_) continue;
        for (std::size_t v = 0; v < n_struct_ + n_slack_; ++v) {
          if (std::fabs(a_[r][v]) > opt_.eps) {
            pivot(r, v);
            break;
          }
        }
      }
    }
    // Phase 2.
    std::vector<double> cost(cols_ - 1, 0.0);
    for (std::size_t v = 0; v < n_struct_; ++v) cost[v] = p.objective(v);
    LpStatus st = optimize(cost, /*forbid_art=*/true);
    sol.status = st;
    if (st != LpStatus::Optimal) return sol;
    sol.x.assign(n_struct_, 0.0);
    for (std::size_t r = 0; r < m; ++r)
      if (basis_[r] < n_struct_) sol.x[basis_[r]] = a_[r][cols_ - 1];
    sol.objective = 0.0;
    for (std::size_t v = 0; v < n_struct_; ++v) sol.objective += p.objective(v) * sol.x[v];
    return sol;
  }

 private:
  static RowType normalized_type(const LpProblem& p, std::size_t r) {
    RowType t = p.row_type(r);
    if (p.row_rhs(r) >= 0) return t;
    // Multiplying a row by -1 flips the inequality direction.
    if (t == RowType::Le) return RowType::Ge;
    if (t == RowType::Ge) return RowType::Le;
    return RowType::Eq;
  }

  /// Maximizes cost.x over the current tableau. Dantzig rule, switching to
  /// Bland's rule after a stall threshold (anti-cycling guarantee).
  LpStatus optimize(const std::vector<double>& cost, bool forbid_art) {
    const std::size_t m = a_.size();
    const std::size_t art_begin = n_struct_ + n_slack_;
    std::vector<double> reduced(cols_ - 1);
    const std::size_t bland_after = 2000;
    for (std::size_t iter = 0; iter < opt_.max_iterations; ++iter) {
      // reduced_j = c_j - c_B . (B^{-1}A)_j; the tableau stores B^{-1}A.
      for (std::size_t j = 0; j < cols_ - 1; ++j) reduced[j] = cost[j];
      for (std::size_t r = 0; r < m; ++r) {
        double cb = cost[basis_[r]];
        if (cb == 0.0) continue;
        const std::vector<double>& row = a_[r];
        for (std::size_t j = 0; j < cols_ - 1; ++j) reduced[j] -= cb * row[j];
      }
      std::size_t enter = cols_;
      bool bland = iter >= bland_after;
      double best = opt_.eps;
      for (std::size_t j = 0; j < cols_ - 1; ++j) {
        if (forbid_art && j >= art_begin) continue;
        if (reduced[j] > (bland ? opt_.eps : best)) {
          enter = j;
          if (bland) break;
          best = reduced[j];
        }
      }
      if (enter == cols_) return LpStatus::Optimal;
      std::size_t leave = m;
      double best_ratio = 0.0;
      for (std::size_t r = 0; r < m; ++r) {
        if (a_[r][enter] > opt_.eps) {
          double ratio = a_[r][cols_ - 1] / a_[r][enter];
          if (leave == m || ratio < best_ratio - opt_.eps ||
              (std::fabs(ratio - best_ratio) <= opt_.eps && basis_[r] < basis_[leave])) {
            leave = r;
            best_ratio = ratio;
          }
        }
      }
      if (leave == m) return LpStatus::Unbounded;
      pivot(leave, enter);
    }
    return LpStatus::IterationLimit;
  }

  void pivot(std::size_t row, std::size_t col) {
    const std::size_t m = a_.size();
    double p = a_[row][col];
    for (std::size_t j = 0; j < cols_; ++j) a_[row][j] /= p;
    for (std::size_t r = 0; r < m; ++r) {
      if (r == row) continue;
      double f = a_[r][col];
      if (f == 0.0) continue;
      for (std::size_t j = 0; j < cols_; ++j) a_[r][j] -= f * a_[row][j];
    }
    basis_[row] = col;
  }

  LpOptions opt_;
  std::size_t n_struct_ = 0, n_slack_ = 0, n_art_ = 0, cols_ = 0;
  std::vector<std::vector<double>> a_;
  std::vector<std::size_t> basis_;
};

}  // namespace

LpSolution solve(const LpProblem& problem, const LpOptions& options) {
  if (problem.num_rows() == 0) {
    LpSolution sol;
    for (std::size_t v = 0; v < problem.num_vars(); ++v) {
      if (problem.objective(v) > 0) {
        sol.status = LpStatus::Unbounded;
        return sol;
      }
    }
    sol.status = LpStatus::Optimal;
    sol.x.assign(problem.num_vars(), 0.0);
    sol.objective = 0.0;
    return sol;
  }
  Tableau tableau(problem, options);
  return tableau.run(problem);
}

}  // namespace flattree::lp
