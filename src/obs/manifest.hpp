#pragma once
// Machine-readable run manifests.
//
// A manifest is one JSON document describing a run: what was executed
// (argv, program name), how (seed, threads, custom fields), in what
// environment (git describe, hardware threads), how long it took, and the
// full metrics snapshot at write time. Benches emit one next to their CSV
// output when --metrics-json=PATH is passed.
//
// Schema (top-level keys, all always present):
//
//   schema         "flattree.run.v1"
//   name           program name (argv[0] basename)
//   argv           full command line, as a string array
//   git            `git describe --always --dirty` or "unknown"
//   hardware_threads  std::thread::hardware_concurrency()
//   wall_time_s    RunSession construction -> finish()
//   fields         caller-provided key/values (seed, threads, epsilon, ...)
//   subsystems     instrumented subsystems with live metrics, name-sorted
//   metrics        {"counters": {...}, "gauges": {...}, "histograms": {...}}
//
// Histograms render as {"count","sum","min","max","buckets":[{"le",...,
// "count"},...]} with the final bucket's "le" = "inf".

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace flattree::obs {

/// `git describe --always --dirty` of the working directory, or "unknown"
/// when git/repo are unavailable. Runs a subprocess; call once per run.
std::string git_describe();

/// Collects run description over the program's lifetime, then writes the
/// manifest. Construct after flag parsing; finish() (or destruction) stamps
/// the wall time, snapshots metrics, and writes the file when a path was
/// given. finish() is idempotent.
class RunSession {
 public:
  /// `argv` is copied; `metrics_path`/`trace_path` may be empty (that part
  /// of the output is skipped).
  RunSession(int argc, const char* const* argv, std::string metrics_path,
             std::string trace_path);
  ~RunSession();

  RunSession(const RunSession&) = delete;
  RunSession& operator=(const RunSession&) = delete;

  /// Caller-provided manifest fields (insertion order is preserved).
  void set_int(const std::string& key, std::int64_t value);
  void set_double(const std::string& key, double value);
  void set_string(const std::string& key, const std::string& value);

  /// True when either output was requested (observability should be on).
  bool active() const { return !metrics_path_.empty() || !trace_path_.empty(); }

  /// Writes the manifest and/or trace, returning false if any requested
  /// file could not be written. Safe to call with no paths (no-op).
  bool finish();

  /// Renders the manifest JSON without touching the filesystem (testing).
  std::string manifest_json() const;

 private:
  struct Field {
    std::string key;
    std::string json_value;  ///< pre-rendered
  };

  std::vector<std::string> argv_;
  std::vector<Field> fields_;
  std::string metrics_path_;
  std::string trace_path_;
  std::uint64_t start_ns_ = 0;
  bool finished_ = false;
};

}  // namespace flattree::obs
