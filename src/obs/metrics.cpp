#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace flattree::obs {

namespace {

std::atomic<bool> g_enabled{false};

constexpr double kInf = std::numeric_limits<double>::infinity();

struct GaugeCell {
  double value = 0.0;
  bool has_value = false;
};

struct HistCell {
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = kInf;
  double max = -kInf;
};

/// Global store. Leaked on purpose: thread-local shards flush from thread
/// destructors, which must never race static destruction order.
struct Store {
  std::mutex mu;
  std::unordered_map<std::string, MetricId> counter_ids;
  std::vector<std::string> counter_names;
  std::vector<std::uint64_t> counters;

  std::unordered_map<std::string, MetricId> gauge_ids;
  std::vector<std::string> gauge_names;
  std::vector<GaugeCell> gauges;

  std::unordered_map<std::string, MetricId> hist_ids;
  std::vector<std::string> hist_names;
  std::vector<HistCell> hists;
};

Store& store() {
  static Store* s = new Store;
  return *s;
}

/// Thread-local deltas, merged into the store by flush(). Index = MetricId;
/// vectors grow lazily, so a shard only pays for metrics its thread touches.
struct Shard {
  std::vector<std::uint64_t> counters;

  struct HistDelta {
    std::vector<double> bounds;  ///< copied from the store on first observe
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = kInf;
    double max = -kInf;
  };
  std::vector<HistDelta> hists;
  bool dirty = false;

  ~Shard() { flush(); }

  void add_counter(MetricId id, std::uint64_t n) {
    if (counters.size() <= id) counters.resize(id + 1, 0);
    counters[id] += n;
    dirty = true;
  }

  void observe(MetricId id, double v) {
    if (hists.size() <= id) hists.resize(id + 1);
    HistDelta& h = hists[id];
    if (h.bounds.empty() && h.buckets.empty()) {
      Store& s = store();
      std::lock_guard lock(s.mu);
      h.bounds = s.hists[id].bounds;
      h.buckets.assign(h.bounds.size() + 1, 0);
    }
    std::size_t b = static_cast<std::size_t>(
        std::lower_bound(h.bounds.begin(), h.bounds.end(), v) - h.bounds.begin());
    ++h.buckets[b];
    ++h.count;
    h.sum += v;
    h.min = std::min(h.min, v);
    h.max = std::max(h.max, v);
    dirty = true;
  }

  void flush() {
    if (!dirty) return;
    Store& s = store();
    std::lock_guard lock(s.mu);
    for (MetricId id = 0; id < counters.size(); ++id) {
      if (counters[id] == 0) continue;
      s.counters[id] += counters[id];
      counters[id] = 0;
    }
    for (MetricId id = 0; id < hists.size(); ++id) {
      HistDelta& d = hists[id];
      if (d.count == 0) continue;
      HistCell& c = s.hists[id];
      for (std::size_t b = 0; b < d.buckets.size(); ++b) {
        c.buckets[b] += d.buckets[b];
        d.buckets[b] = 0;
      }
      c.count += d.count;
      c.sum += d.sum;
      c.min = std::min(c.min, d.min);
      c.max = std::max(c.max, d.max);
      d.count = 0;
      d.sum = 0.0;
      d.min = kInf;
      d.max = -kInf;
    }
    dirty = false;
  }
};

thread_local Shard t_shard;

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

Counter::Counter(const std::string& name) {
  Store& s = store();
  std::lock_guard lock(s.mu);
  auto it = s.counter_ids.find(name);
  if (it != s.counter_ids.end()) {
    id_ = it->second;
    return;
  }
  id_ = static_cast<MetricId>(s.counter_names.size());
  s.counter_ids.emplace(name, id_);
  s.counter_names.push_back(name);
  s.counters.push_back(0);
}

void Counter::add(std::uint64_t n) {
  if (!enabled()) return;
  t_shard.add_counter(id_, n);
}

Gauge::Gauge(const std::string& name) {
  Store& s = store();
  std::lock_guard lock(s.mu);
  auto it = s.gauge_ids.find(name);
  if (it != s.gauge_ids.end()) {
    id_ = it->second;
    return;
  }
  id_ = static_cast<MetricId>(s.gauge_names.size());
  s.gauge_ids.emplace(name, id_);
  s.gauge_names.push_back(name);
  s.gauges.push_back({});
}

void Gauge::set(double v) {
  if (!enabled()) return;
  Store& s = store();
  std::lock_guard lock(s.mu);
  s.gauges[id_].value = v;
  s.gauges[id_].has_value = true;
}

void Gauge::record_max(double v) {
  if (!enabled()) return;
  Store& s = store();
  std::lock_guard lock(s.mu);
  GaugeCell& cell = s.gauges[id_];
  cell.value = cell.has_value ? std::max(cell.value, v) : v;
  cell.has_value = true;
}

Histogram::Histogram(const std::string& name, std::vector<double> bounds) {
  if (bounds.empty()) throw std::invalid_argument("Histogram: need at least one bound");
  for (std::size_t i = 1; i < bounds.size(); ++i)
    if (!(bounds[i - 1] < bounds[i]))
      throw std::invalid_argument("Histogram: bounds must be strictly ascending");
  Store& s = store();
  std::lock_guard lock(s.mu);
  auto it = s.hist_ids.find(name);
  if (it != s.hist_ids.end()) {
    if (s.hists[it->second].bounds != bounds)
      throw std::invalid_argument("Histogram: re-registered '" + name +
                                  "' with different bounds");
    id_ = it->second;
    return;
  }
  id_ = static_cast<MetricId>(s.hist_names.size());
  s.hist_ids.emplace(name, id_);
  s.hist_names.push_back(name);
  HistCell cell;
  cell.buckets.assign(bounds.size() + 1, 0);
  cell.bounds = std::move(bounds);
  s.hists.push_back(std::move(cell));
}

void Histogram::observe(double v) {
  if (!enabled()) return;
  t_shard.observe(id_, v);
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  std::size_t count) {
  if (start <= 0.0 || factor <= 1.0 || count == 0)
    throw std::invalid_argument("Histogram::exponential_bounds: bad parameters");
  std::vector<double> bounds(count);
  double edge = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds[i] = edge;
    edge *= factor;
  }
  return bounds;
}

std::vector<double> Histogram::linear_bounds(double start, double step,
                                             std::size_t count) {
  if (step <= 0.0 || count == 0)
    throw std::invalid_argument("Histogram::linear_bounds: bad parameters");
  std::vector<double> bounds(count);
  for (std::size_t i = 0; i < count; ++i)
    bounds[i] = start + step * static_cast<double>(i);
  return bounds;
}

void flush_thread_metrics() { t_shard.flush(); }

std::vector<std::string> MetricsSnapshot::subsystems() const {
  std::vector<std::string> out;
  auto note = [&out](const std::string& name, bool live) {
    if (!live) return;
    std::string head = name.substr(0, name.find('.'));
    if (std::find(out.begin(), out.end(), head) == out.end()) out.push_back(head);
  };
  for (const auto& [name, v] : counters) note(name, v != 0);
  for (const auto& [name, v] : gauges) note(name, true);
  for (const auto& h : histograms) note(h.name, h.count != 0);
  std::sort(out.begin(), out.end());
  return out;
}

MetricsSnapshot snapshot_metrics() {
  flush_thread_metrics();
  MetricsSnapshot snap;
  Store& s = store();
  std::lock_guard lock(s.mu);
  for (MetricId id = 0; id < s.counter_names.size(); ++id)
    snap.counters.emplace_back(s.counter_names[id], s.counters[id]);
  for (MetricId id = 0; id < s.gauge_names.size(); ++id)
    if (s.gauges[id].has_value)
      snap.gauges.emplace_back(s.gauge_names[id], s.gauges[id].value);
  for (MetricId id = 0; id < s.hist_names.size(); ++id) {
    const HistCell& c = s.hists[id];
    HistogramSnapshot h;
    h.name = s.hist_names[id];
    h.bounds = c.bounds;
    h.buckets = c.buckets;
    h.count = c.count;
    h.sum = c.sum;
    h.min = c.count ? c.min : 0.0;
    h.max = c.count ? c.max : 0.0;
    snap.histograms.push_back(std::move(h));
  }
  auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  return snap;
}

void reset_metrics() {
  // Clear the caller's pending deltas first so they cannot resurrect
  // post-reset values on the next flush.
  t_shard.counters.clear();
  t_shard.hists.clear();
  t_shard.dirty = false;
  Store& s = store();
  std::lock_guard lock(s.mu);
  std::fill(s.counters.begin(), s.counters.end(), 0);
  for (GaugeCell& g : s.gauges) g = {};
  for (HistCell& h : s.hists) {
    std::fill(h.buckets.begin(), h.buckets.end(), 0);
    h.count = 0;
    h.sum = 0.0;
    h.min = kInf;
    h.max = -kInf;
  }
}

}  // namespace flattree::obs
