#include "obs/manifest.hpp"

#include <chrono>
#include <cstdio>
#include <thread>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace flattree::obs {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string basename_of(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  return std::fclose(f) == 0 && written == content.size();
}

}  // namespace

std::string git_describe() {
  std::FILE* pipe = ::popen("git describe --always --dirty 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buf[256];
  std::string out;
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
  int rc = ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) out.pop_back();
  if (rc != 0 || out.empty()) return "unknown";
  return out;
}

RunSession::RunSession(int argc, const char* const* argv, std::string metrics_path,
                       std::string trace_path)
    : metrics_path_(std::move(metrics_path)),
      trace_path_(std::move(trace_path)),
      start_ns_(now_ns()) {
  argv_.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) argv_.emplace_back(argv[i]);
}

RunSession::~RunSession() { finish(); }

void RunSession::set_int(const std::string& key, std::int64_t value) {
  fields_.push_back({key, std::to_string(value)});
}

void RunSession::set_double(const std::string& key, double value) {
  fields_.push_back({key, json_number(value)});
}

void RunSession::set_string(const std::string& key, const std::string& value) {
  fields_.push_back({key, "\"" + json_escape(value) + "\""});
}

std::string RunSession::manifest_json() const {
  MetricsSnapshot snap = snapshot_metrics();
  JsonWriter w;
  w.begin_object();
  w.key("schema");
  w.string_value("flattree.run.v1");
  w.key("name");
  w.string_value(argv_.empty() ? "unknown" : basename_of(argv_[0]));
  w.key("argv");
  w.begin_array();
  for (const std::string& a : argv_) w.string_value(a);
  w.end_array();
  w.key("git");
  w.string_value(git_describe());
  w.key("hardware_threads");
  w.uint_value(std::thread::hardware_concurrency());
  w.key("wall_time_s");
  w.double_value(static_cast<double>(now_ns() - start_ns_) / 1e9);
  w.key("fields");
  w.begin_object();
  for (const Field& f : fields_) {
    w.key(f.key);
    w.raw_value(f.json_value);
  }
  w.end_object();
  w.key("subsystems");
  w.begin_array();
  for (const std::string& s : snap.subsystems()) w.string_value(s);
  w.end_array();
  w.key("metrics");
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, value] : snap.counters) {
    w.key(name);
    w.uint_value(value);
  }
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, value] : snap.gauges) {
    w.key(name);
    w.double_value(value);
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const HistogramSnapshot& h : snap.histograms) {
    w.key(h.name);
    w.begin_object();
    w.key("count");
    w.uint_value(h.count);
    w.key("sum");
    w.double_value(h.sum);
    w.key("min");
    w.double_value(h.min);
    w.key("max");
    w.double_value(h.max);
    w.key("buckets");
    w.begin_array();
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      w.begin_object();
      w.key("le");
      if (b < h.bounds.size())
        w.double_value(h.bounds[b]);
      else
        w.string_value("inf");
      w.key("count");
      w.uint_value(h.buckets[b]);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  w.end_object();
  std::string doc = w.str();
  doc += '\n';
  return doc;
}

bool RunSession::finish() {
  if (finished_) return true;
  finished_ = true;
  bool ok = true;
  if (!trace_path_.empty()) {
    if (!write_trace(trace_path_))
      ok = false;
    else
      std::fprintf(stderr, "obs: wrote trace %s\n", trace_path_.c_str());
  }
  if (!metrics_path_.empty()) {
    if (!write_file(metrics_path_, manifest_json()))
      ok = false;
    else
      std::fprintf(stderr, "obs: wrote manifest %s\n", metrics_path_.c_str());
  }
  return ok;
}

}  // namespace flattree::obs
