#pragma once
// Lightweight tracing spans with a JSON-lines exporter.
//
// A span measures one monotonic-clock interval on one thread:
//
//   void solve() {
//     OBS_SPAN("gk.solve");          // whole call
//     while (...) {
//       OBS_SPAN("gk.phase");        // nested: depth 1 under gk.solve
//       ...
//     }
//   }
//
// Spans are inert (one relaxed atomic load) unless tracing has been started
// with start_tracing(). While active, each completed span appends a record
// to a thread-local buffer; write_trace() collects every buffer, sorts by
// start time, and writes one JSON object per line:
//
//   {"event":"trace_meta","spans":N,"dropped":D}
//   {"event":"span","name":"gk.phase","tid":0,"depth":1,"t_us":12.250,"dur_us":843.100}
//
// `tid` is a small per-run thread ordinal (registration order), `t_us` is
// microseconds since start_tracing(). Span names must be string literals
// (the buffer stores the pointer, not a copy). The global buffer is capped
// (kMaxTraceEvents); past the cap spans are counted as dropped rather than
// recorded, so runaway loops cannot exhaust memory.

#include <cstdint>
#include <string>

namespace flattree::obs {

/// Total span cap across all threads per tracing session.
constexpr std::size_t kMaxTraceEvents = 1u << 20;

bool tracing();

/// Clears any previous session and starts recording spans.
void start_tracing();

/// Stops recording; already-recorded spans stay buffered for write_trace().
void stop_tracing();

/// Number of spans currently buffered (collects all thread buffers).
std::size_t trace_span_count();

/// Writes the buffered session as JSON lines. Returns false (and logs
/// nothing) when the file cannot be opened. Stops tracing first.
bool write_trace(const std::string& path);

/// RAII span; prefer the OBS_SPAN macro. `name` must outlive the tracing
/// session (string literals do).
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
  bool active_ = false;
};

}  // namespace flattree::obs

#define FLATTREE_OBS_CONCAT2(a, b) a##b
#define FLATTREE_OBS_CONCAT(a, b) FLATTREE_OBS_CONCAT2(a, b)
/// Opens a span covering the rest of the enclosing scope.
#define OBS_SPAN(name) \
  ::flattree::obs::Span FLATTREE_OBS_CONCAT(obs_span_, __LINE__)(name)
