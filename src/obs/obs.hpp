#pragma once
// Umbrella header for the observability subsystem.
//
//   * obs/metrics.hpp  — counters / gauges / histograms + global switch
//   * obs/trace.hpp    — OBS_SPAN tracing with JSON-lines export
//   * obs/manifest.hpp — per-run manifest writer (RunSession)
//   * obs/json.hpp     — JSON emission/validation helpers
//
// Everything is disabled by default; see DESIGN.md (Observability) for the
// determinism contract and the disabled-path cost budget.

#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
