#include "obs/trace.hpp"

#include "obs/json.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <vector>

namespace flattree::obs {

namespace {

struct TraceEvent {
  const char* name;
  std::uint32_t tid;
  std::uint32_t depth;
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
};

/// Session state. Leaked (like the metrics store) so thread-exit flushes
/// never race static destruction.
struct TraceState {
  std::mutex mu;
  std::vector<std::vector<TraceEvent>*> live;  ///< registered thread buffers
  std::vector<TraceEvent> retired;             ///< buffers of exited threads
  std::atomic<std::uint64_t> t0_ns{0};
  /// Bumped by start_tracing; stale buffers self-clear. Atomic because spans
  /// read it outside the lock on their fast path.
  std::atomic<std::uint64_t> session{0};
  std::uint32_t next_tid = 0;
  std::atomic<std::size_t> recorded{0};
  std::atomic<std::uint64_t> dropped{0};
};

TraceState& state() {
  static TraceState* s = new TraceState;
  return *s;
}

std::atomic<bool> g_tracing{false};

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Per-thread buffer, registered with the session on first span.
struct ThreadBuf {
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
  std::uint64_t session = ~0ull;

  ~ThreadBuf() {
    TraceState& s = state();
    std::lock_guard lock(s.mu);
    auto it = std::find(s.live.begin(), s.live.end(), &events);
    if (it != s.live.end()) s.live.erase(it);
    if (session == s.session.load(std::memory_order_relaxed))
      s.retired.insert(s.retired.end(), events.begin(), events.end());
  }

  void ensure_session() {
    TraceState& s = state();
    std::lock_guard lock(s.mu);
    if (session == s.session.load(std::memory_order_relaxed)) return;
    // New session: drop stale events, (re)register, take a fresh tid.
    events.clear();
    session = s.session.load(std::memory_order_relaxed);
    tid = s.next_tid++;
    if (std::find(s.live.begin(), s.live.end(), &events) == s.live.end())
      s.live.push_back(&events);
  }
};

thread_local ThreadBuf t_buf;
thread_local std::uint32_t t_depth = 0;

}  // namespace

bool tracing() { return g_tracing.load(std::memory_order_relaxed); }

void start_tracing() {
  TraceState& s = state();
  {
    std::lock_guard lock(s.mu);
    s.session.fetch_add(1, std::memory_order_relaxed);
    s.live.clear();  // buffers re-register lazily with fresh tids
    s.retired.clear();
    s.next_tid = 0;
    s.t0_ns.store(now_ns(), std::memory_order_relaxed);
    s.recorded.store(0, std::memory_order_relaxed);
    s.dropped.store(0, std::memory_order_relaxed);
  }
  g_tracing.store(true, std::memory_order_relaxed);
}

void stop_tracing() { g_tracing.store(false, std::memory_order_relaxed); }

Span::Span(const char* name) {
  if (!tracing()) return;
  active_ = true;
  name_ = name;
  depth_ = t_depth++;
  start_ns_ = now_ns();
}

Span::~Span() {
  if (!active_) return;
  --t_depth;
  std::uint64_t end = now_ns();
  TraceState& s = state();
  if (!tracing() && t_buf.session != s.session.load(std::memory_order_relaxed))
    return;  // session already reset
  if (s.recorded.fetch_add(1, std::memory_order_relaxed) >= kMaxTraceEvents) {
    s.recorded.fetch_sub(1, std::memory_order_relaxed);
    s.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  t_buf.ensure_session();
  std::uint64_t t0 = s.t0_ns.load(std::memory_order_relaxed);  // stable per session
  t_buf.events.push_back(
      {name_, t_buf.tid, depth_, start_ns_ - t0, end - start_ns_});
}

namespace {

std::vector<TraceEvent> collect_events() {
  TraceState& s = state();
  std::lock_guard lock(s.mu);
  std::vector<TraceEvent> all = s.retired;
  for (const auto* buf : s.live) all.insert(all.end(), buf->begin(), buf->end());
  std::sort(all.begin(), all.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    if (a.depth != b.depth) return a.depth < b.depth;
    return a.tid < b.tid;
  });
  return all;
}

}  // namespace

std::size_t trace_span_count() { return collect_events().size(); }

bool write_trace(const std::string& path) {
  stop_tracing();
  std::vector<TraceEvent> events = collect_events();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\"event\":\"trace_meta\",\"spans\":%zu,\"dropped\":%llu}\n",
               events.size(),
               static_cast<unsigned long long>(
                   state().dropped.load(std::memory_order_relaxed)));
  for (const TraceEvent& e : events) {
    std::fprintf(f,
                 "{\"event\":\"span\",\"name\":\"%s\",\"tid\":%u,\"depth\":%u,"
                 "\"t_us\":%.3f,\"dur_us\":%.3f}\n",
                 json_escape(e.name).c_str(), e.tid, e.depth,
                 static_cast<double>(e.start_ns) / 1e3,
                 static_cast<double>(e.dur_ns) / 1e3);
  }
  std::fclose(f);
  return true;
}

}  // namespace flattree::obs
