#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <unordered_set>

namespace flattree::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (ch < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += static_cast<char>(ch);
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  // JSON has no inf/nan; exporters should not produce them, but a stray
  // non-finite must not corrupt the document.
  if (!std::isfinite(value)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[32];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, value);
    double back = 0.0;
    std::sscanf(probe, "%lf", &back);
    if (back == value) return probe;
  }
  return buf;
}

void JsonWriter::comma_for_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    if (counts_.back() != 0) out_ += ',';
    counts_.back() = 1;
  }
}

void JsonWriter::begin_object() {
  comma_for_value();
  out_ += '{';
  stack_ += 'o';
  counts_ += '\0';
}

void JsonWriter::end_object() {
  out_ += '}';
  stack_.pop_back();
  counts_.pop_back();
}

void JsonWriter::begin_array() {
  comma_for_value();
  out_ += '[';
  stack_ += 'a';
  counts_ += '\0';
}

void JsonWriter::end_array() {
  out_ += ']';
  stack_.pop_back();
  counts_.pop_back();
}

void JsonWriter::key(const std::string& k) {
  if (!counts_.empty() && counts_.back() != 0) out_ += ',';
  if (!counts_.empty()) counts_.back() = 1;
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  after_key_ = true;
}

void JsonWriter::string_value(const std::string& v) {
  comma_for_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
}

void JsonWriter::int_value(std::int64_t v) {
  comma_for_value();
  out_ += std::to_string(v);
}

void JsonWriter::uint_value(std::uint64_t v) {
  comma_for_value();
  out_ += std::to_string(v);
}

void JsonWriter::double_value(double v) {
  comma_for_value();
  out_ += json_number(v);
}

void JsonWriter::bool_value(bool v) {
  comma_for_value();
  out_ += v ? "true" : "false";
}

void JsonWriter::null_value() {
  comma_for_value();
  out_ += "null";
}

void JsonWriter::raw_value(const std::string& fragment) {
  comma_for_value();
  out_ += fragment;
}

namespace {

/// Recursive-descent JSON validator (no value materialization).
struct Parser {
  const char* p;
  const char* end;
  int depth = 0;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) ++p;
  }

  bool literal(const char* word) {
    std::size_t len = std::strlen(word);
    if (static_cast<std::size_t>(end - p) < len || std::strncmp(p, word, len) != 0)
      return false;
    p += len;
    return true;
  }

  bool string() {
    if (p >= end || *p != '"') return false;
    ++p;
    while (p < end) {
      unsigned char c = static_cast<unsigned char>(*p);
      if (c == '"') {
        ++p;
        return true;
      }
      if (c == '\\') {
        ++p;
        if (p >= end) return false;
        char e = *p;
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++p;
            if (p >= end || !std::isxdigit(static_cast<unsigned char>(*p))) return false;
          }
        } else if (std::strchr("\"\\/bfnrt", e) == nullptr) {
          return false;
        }
        ++p;
      } else if (c < 0x20) {
        return false;
      } else {
        ++p;
      }
    }
    return false;
  }

  bool number() {
    const char* start = p;
    if (p < end && *p == '-') ++p;
    if (p >= end || !std::isdigit(static_cast<unsigned char>(*p))) return false;
    if (*p == '0') {
      ++p;
    } else {
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    if (p < end && *p == '.') {
      ++p;
      if (p >= end || !std::isdigit(static_cast<unsigned char>(*p))) return false;
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    if (p < end && (*p == 'e' || *p == 'E')) {
      ++p;
      if (p < end && (*p == '+' || *p == '-')) ++p;
      if (p >= end || !std::isdigit(static_cast<unsigned char>(*p))) return false;
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    return p > start;
  }

  bool value() {
    if (++depth > 256) return false;
    skip_ws();
    bool ok = false;
    if (p >= end) {
      ok = false;
    } else if (*p == '{') {
      ++p;
      skip_ws();
      if (p < end && *p == '}') {
        ++p;
        ok = true;
      } else {
        for (;;) {
          skip_ws();
          if (!string()) return false;
          skip_ws();
          if (p >= end || *p != ':') return false;
          ++p;
          if (!value()) return false;
          skip_ws();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == '}') {
            ++p;
            ok = true;
          }
          break;
        }
      }
    } else if (*p == '[') {
      ++p;
      skip_ws();
      if (p < end && *p == ']') {
        ++p;
        ok = true;
      } else {
        for (;;) {
          if (!value()) return false;
          skip_ws();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == ']') {
            ++p;
            ok = true;
          }
          break;
        }
      }
    } else if (*p == '"') {
      ok = string();
    } else if (*p == 't') {
      ok = literal("true");
    } else if (*p == 'f') {
      ok = literal("false");
    } else if (*p == 'n') {
      ok = literal("null");
    } else {
      ok = number();
    }
    --depth;
    return ok;
  }
};

}  // namespace

bool json_valid(const std::string& text) {
  Parser parser{text.data(), text.data() + text.size()};
  if (!parser.value()) return false;
  parser.skip_ws();
  return parser.p == parser.end;
}

// -- JsonValue ---------------------------------------------------------------

JsonValue JsonValue::make_bool(bool v) {
  JsonValue out;
  out.kind_ = Kind::Bool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::make_int(std::int64_t v) {
  JsonValue out;
  out.kind_ = Kind::Int;
  out.int_ = v;
  return out;
}

JsonValue JsonValue::make_double(double v) {
  JsonValue out;
  out.kind_ = Kind::Double;
  out.double_ = v;
  return out;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue out;
  out.kind_ = Kind::String;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::make_array() {
  JsonValue out;
  out.kind_ = Kind::Array;
  return out;
}

JsonValue JsonValue::make_object() {
  JsonValue out;
  out.kind_ = Kind::Object;
  return out;
}

namespace {

[[noreturn]] void kind_error(const char* want) {
  throw std::logic_error(std::string("JsonValue: not a ") + want);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::Bool) kind_error("bool");
  return bool_;
}

std::int64_t JsonValue::as_int() const {
  if (kind_ != Kind::Int) kind_error("int");
  return int_;
}

double JsonValue::as_number() const {
  if (kind_ == Kind::Int) return static_cast<double>(int_);
  if (kind_ == Kind::Double) return double_;
  kind_error("number");
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::String) kind_error("string");
  return string_;
}

std::vector<JsonValue>& JsonValue::array() {
  if (kind_ != Kind::Array) kind_error("array");
  return array_;
}

const std::vector<JsonValue>& JsonValue::array() const {
  if (kind_ != Kind::Array) kind_error("array");
  return array_;
}

std::vector<std::pair<std::string, JsonValue>>& JsonValue::object() {
  if (kind_ != Kind::Object) kind_error("object");
  return object_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::object() const {
  if (kind_ != Kind::Object) kind_error("object");
  return object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

void JsonValue::write(JsonWriter& w) const {
  switch (kind_) {
    case Kind::Null: w.null_value(); break;
    case Kind::Bool: w.bool_value(bool_); break;
    case Kind::Int: w.int_value(int_); break;
    case Kind::Double: w.double_value(double_); break;
    case Kind::String: w.string_value(string_); break;
    case Kind::Array:
      w.begin_array();
      for (const JsonValue& v : array_) v.write(w);
      w.end_array();
      break;
    case Kind::Object:
      w.begin_object();
      for (const auto& [k, v] : object_) {
        w.key(k);
        v.write(w);
      }
      w.end_object();
      break;
  }
}

std::string JsonValue::to_json() const {
  JsonWriter w;
  write(w);
  return w.str();
}

// -- materializing parser ----------------------------------------------------

namespace {

/// Recursive-descent parser with position tracking. Unlike the validator
/// above it materializes values and reports *where* and *why* parsing
/// stopped, with stable dotted codes (tests pin them).
struct TreeParser {
  const char* begin;
  const char* p;
  const char* end;
  int depth = 0;
  JsonError err;
  bool failed = false;

  bool fail(const char* code, const std::string& message, const char* at) {
    if (failed) return false;  // keep the first (deepest) failure
    failed = true;
    err.code = code;
    err.message = message;
    err.line = 1;
    err.column = 1;
    for (const char* q = begin; q < at; ++q) {
      if (*q == '\n') {
        ++err.line;
        err.column = 1;
      } else {
        ++err.column;
      }
    }
    return false;
  }

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) ++p;
  }

  bool parse_string(std::string& out) {
    const char* start = p;
    if (p >= end)
      return fail("json.truncated", "input ends where a string was expected", p);
    if (*p != '"') return fail("json.expected_string", "expected '\"'", p);
    ++p;
    out.clear();
    while (p < end) {
      unsigned char c = static_cast<unsigned char>(*p);
      if (c == '"') {
        ++p;
        return true;
      }
      if (c == '\\') {
        const char* esc = p;
        ++p;
        if (p >= end) return fail("json.truncated", "input ends mid-escape", esc);
        char e = *p;
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            std::uint32_t cp = 0;
            for (int i = 0; i < 4; ++i) {
              ++p;
              if (p >= end)
                return fail("json.truncated", "input ends mid-\\u escape", esc);
              if (!std::isxdigit(static_cast<unsigned char>(*p)))
                return fail("json.bad_escape", "bad \\u escape", esc);
              char h = *p;
              cp = cp * 16 +
                   static_cast<std::uint32_t>(
                       h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
            }
            // UTF-8 encode the BMP code point (surrogate pairs pass through
            // as two separate 3-byte sequences — exactly what json_escape
            // produced them from, so round trips are byte-stable).
            if (cp < 0x80) {
              out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              out += static_cast<char>(0xC0 | (cp >> 6));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (cp >> 12));
              out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            }
            break;
          }
          default:
            return fail("json.bad_escape", std::string("invalid escape '\\") + e + "'",
                        esc);
        }
        ++p;
      } else if (c < 0x20) {
        return fail("json.control_in_string", "raw control character in string", p);
      } else {
        out += static_cast<char>(c);
        ++p;
      }
    }
    // The input ended inside the string (covers cuts mid-UTF-8 sequence:
    // the lead/continuation bytes were consumed as ordinary string bytes
    // above, never read past `end`).
    return fail("json.truncated", "input ends inside a string", start);
  }

  bool parse_number(JsonValue& out) {
    const char* start = p;
    bool integral = true;
    if (p < end && *p == '-') ++p;
    if (p >= end) return fail("json.truncated", "input ends mid-number", start);
    if (!std::isdigit(static_cast<unsigned char>(*p)))
      return fail("json.bad_number", "malformed number", start);
    if (*p == '0') {
      ++p;
      if (p < end && std::isdigit(static_cast<unsigned char>(*p)))
        return fail("json.bad_number", "leading zero", start);
    } else {
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    if (p < end && *p == '.') {
      integral = false;
      ++p;
      if (p >= end) return fail("json.truncated", "input ends mid-number", start);
      if (!std::isdigit(static_cast<unsigned char>(*p)))
        return fail("json.bad_number", "missing fraction digits", start);
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    if (p < end && (*p == 'e' || *p == 'E')) {
      integral = false;
      ++p;
      if (p < end && (*p == '+' || *p == '-')) ++p;
      if (p >= end) return fail("json.truncated", "input ends mid-number", start);
      if (!std::isdigit(static_cast<unsigned char>(*p)))
        return fail("json.bad_number", "missing exponent digits", start);
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    std::string token(start, p);
    if (integral) {
      // "-0" stays a Double so canonical re-emission preserves the sign.
      errno = 0;
      char* tail = nullptr;
      long long v = std::strtoll(token.c_str(), &tail, 10);
      if (errno == 0 && tail != nullptr && *tail == '\0' && !(v == 0 && token[0] == '-')) {
        out = JsonValue::make_int(v);
        return true;
      }
    }
    errno = 0;
    double d = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(d))
      return fail("json.number_nonfinite",
                  "number overflows to a non-finite value: " + token, start);
    out = JsonValue::make_double(d);
    return true;
  }

  bool parse_value(JsonValue& out) {
    if (++depth > 256) {
      --depth;
      return fail("json.depth", "nesting deeper than 256", p);
    }
    skip_ws();
    bool ok = false;
    if (p >= end) {
      // depth > 1 means a container above us is still open, so the input
      // was cut mid-document; depth == 1 is a genuinely empty document.
      ok = depth > 1 ? fail("json.truncated", "input ends mid-document", p)
                     : fail("json.expected_value", "unexpected end of input", p);
    } else if (*p == '{') {
      ++p;
      out = JsonValue::make_object();
      skip_ws();
      if (p < end && *p == '}') {
        ++p;
        ok = true;
      } else {
        std::unordered_set<std::string> seen;
        for (;;) {
          skip_ws();
          const char* key_at = p;
          std::string key;
          if (!parse_string(key)) break;
          if (!seen.insert(key).second) {
            fail("json.duplicate_key", "duplicate object key \"" + key + "\"", key_at);
            break;
          }
          skip_ws();
          if (p >= end) {
            fail("json.truncated", "input ends before ':'", p);
            break;
          }
          if (*p != ':') {
            fail("json.expected_colon", "expected ':' after object key", p);
            break;
          }
          ++p;
          JsonValue member;
          if (!parse_value(member)) break;
          out.object().emplace_back(std::move(key), std::move(member));
          skip_ws();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == '}') {
            ++p;
            ok = true;
          } else if (p >= end) {
            fail("json.truncated", "input ends inside an object", p);
          } else {
            fail("json.expected_comma_or_close", "expected ',' or '}'", p);
          }
          break;
        }
      }
    } else if (*p == '[') {
      ++p;
      out = JsonValue::make_array();
      skip_ws();
      if (p < end && *p == ']') {
        ++p;
        ok = true;
      } else {
        for (;;) {
          JsonValue element;
          if (!parse_value(element)) break;
          out.array().push_back(std::move(element));
          skip_ws();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == ']') {
            ++p;
            ok = true;
          } else if (p >= end) {
            fail("json.truncated", "input ends inside an array", p);
          } else {
            fail("json.expected_comma_or_close", "expected ',' or ']'", p);
          }
          break;
        }
      }
    } else if (*p == '"') {
      std::string s;
      ok = parse_string(s);
      if (ok) out = JsonValue::make_string(std::move(s));
    } else if (*p == 't' || *p == 'f' || *p == 'n') {
      const char* start = p;
      auto literal = [&](const char* word) {
        std::size_t len = std::strlen(word);
        if (static_cast<std::size_t>(end - p) < len || std::strncmp(p, word, len) != 0)
          return false;
        p += len;
        return true;
      };
      if (literal("true")) {
        out = JsonValue::make_bool(true);
        ok = true;
      } else if (literal("false")) {
        out = JsonValue::make_bool(false);
        ok = true;
      } else if (literal("null")) {
        out = JsonValue::make_null();
        ok = true;
      } else {
        // "tru" / "fals" / "n" at end of input is a cut, not a typo.
        auto cut_of = [&](const char* word) {
          std::size_t avail = static_cast<std::size_t>(end - start);
          return avail < std::strlen(word) && std::strncmp(start, word, avail) == 0;
        };
        if (cut_of("true") || cut_of("false") || cut_of("null"))
          ok = fail("json.truncated", "input ends mid-literal", start);
        else
          ok = fail("json.bad_literal", "expected true/false/null", start);
      }
    } else if (*p == '-' || std::isdigit(static_cast<unsigned char>(*p))) {
      ok = parse_number(out);
    } else {
      ok = fail("json.expected_value", std::string("unexpected character '") + *p + "'",
                p);
    }
    --depth;
    return ok;
  }
};

}  // namespace

bool json_parse(const std::string& text, JsonValue& out, JsonError* error) {
  TreeParser parser{text.data(), text.data(), text.data() + text.size(), {}};
  JsonValue value;
  if (parser.parse_value(value)) {
    parser.skip_ws();
    if (parser.p != parser.end) {
      parser.fail("json.trailing", "trailing characters after document", parser.p);
    } else {
      out = std::move(value);
      return true;
    }
  }
  if (error != nullptr) *error = parser.err;
  return false;
}

}  // namespace flattree::obs
