#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace flattree::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (ch < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += static_cast<char>(ch);
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  // JSON has no inf/nan; exporters should not produce them, but a stray
  // non-finite must not corrupt the document.
  if (!std::isfinite(value)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[32];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, value);
    double back = 0.0;
    std::sscanf(probe, "%lf", &back);
    if (back == value) {
      std::memcpy(buf, probe, sizeof(probe));
      break;
    }
  }
  return buf;
}

void JsonWriter::comma_for_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    if (counts_.back() != 0) out_ += ',';
    counts_.back() = 1;
  }
}

void JsonWriter::begin_object() {
  comma_for_value();
  out_ += '{';
  stack_ += 'o';
  counts_ += '\0';
}

void JsonWriter::end_object() {
  out_ += '}';
  stack_.pop_back();
  counts_.pop_back();
}

void JsonWriter::begin_array() {
  comma_for_value();
  out_ += '[';
  stack_ += 'a';
  counts_ += '\0';
}

void JsonWriter::end_array() {
  out_ += ']';
  stack_.pop_back();
  counts_.pop_back();
}

void JsonWriter::key(const std::string& k) {
  if (!counts_.empty() && counts_.back() != 0) out_ += ',';
  if (!counts_.empty()) counts_.back() = 1;
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  after_key_ = true;
}

void JsonWriter::string_value(const std::string& v) {
  comma_for_value();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
}

void JsonWriter::int_value(std::int64_t v) {
  comma_for_value();
  out_ += std::to_string(v);
}

void JsonWriter::uint_value(std::uint64_t v) {
  comma_for_value();
  out_ += std::to_string(v);
}

void JsonWriter::double_value(double v) {
  comma_for_value();
  out_ += json_number(v);
}

void JsonWriter::bool_value(bool v) {
  comma_for_value();
  out_ += v ? "true" : "false";
}

void JsonWriter::null_value() {
  comma_for_value();
  out_ += "null";
}

void JsonWriter::raw_value(const std::string& fragment) {
  comma_for_value();
  out_ += fragment;
}

namespace {

/// Recursive-descent JSON validator (no value materialization).
struct Parser {
  const char* p;
  const char* end;
  int depth = 0;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) ++p;
  }

  bool literal(const char* word) {
    std::size_t len = std::strlen(word);
    if (static_cast<std::size_t>(end - p) < len || std::strncmp(p, word, len) != 0)
      return false;
    p += len;
    return true;
  }

  bool string() {
    if (p >= end || *p != '"') return false;
    ++p;
    while (p < end) {
      unsigned char c = static_cast<unsigned char>(*p);
      if (c == '"') {
        ++p;
        return true;
      }
      if (c == '\\') {
        ++p;
        if (p >= end) return false;
        char e = *p;
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++p;
            if (p >= end || !std::isxdigit(static_cast<unsigned char>(*p))) return false;
          }
        } else if (std::strchr("\"\\/bfnrt", e) == nullptr) {
          return false;
        }
        ++p;
      } else if (c < 0x20) {
        return false;
      } else {
        ++p;
      }
    }
    return false;
  }

  bool number() {
    const char* start = p;
    if (p < end && *p == '-') ++p;
    if (p >= end || !std::isdigit(static_cast<unsigned char>(*p))) return false;
    if (*p == '0') {
      ++p;
    } else {
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    if (p < end && *p == '.') {
      ++p;
      if (p >= end || !std::isdigit(static_cast<unsigned char>(*p))) return false;
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    if (p < end && (*p == 'e' || *p == 'E')) {
      ++p;
      if (p < end && (*p == '+' || *p == '-')) ++p;
      if (p >= end || !std::isdigit(static_cast<unsigned char>(*p))) return false;
      while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    }
    return p > start;
  }

  bool value() {
    if (++depth > 256) return false;
    skip_ws();
    bool ok = false;
    if (p >= end) {
      ok = false;
    } else if (*p == '{') {
      ++p;
      skip_ws();
      if (p < end && *p == '}') {
        ++p;
        ok = true;
      } else {
        for (;;) {
          skip_ws();
          if (!string()) return false;
          skip_ws();
          if (p >= end || *p != ':') return false;
          ++p;
          if (!value()) return false;
          skip_ws();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == '}') {
            ++p;
            ok = true;
          }
          break;
        }
      }
    } else if (*p == '[') {
      ++p;
      skip_ws();
      if (p < end && *p == ']') {
        ++p;
        ok = true;
      } else {
        for (;;) {
          if (!value()) return false;
          skip_ws();
          if (p < end && *p == ',') {
            ++p;
            continue;
          }
          if (p < end && *p == ']') {
            ++p;
            ok = true;
          }
          break;
        }
      }
    } else if (*p == '"') {
      ok = string();
    } else if (*p == 't') {
      ok = literal("true");
    } else if (*p == 'f') {
      ok = literal("false");
    } else if (*p == 'n') {
      ok = literal("null");
    } else {
      ok = number();
    }
    --depth;
    return ok;
  }
};

}  // namespace

bool json_valid(const std::string& text) {
  Parser parser{text.data(), text.data() + text.size()};
  if (!parser.value()) return false;
  parser.skip_ws();
  return parser.p == parser.end;
}

}  // namespace flattree::obs
