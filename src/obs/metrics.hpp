#pragma once
// Metrics registry: counters, gauges, and fixed-bucket histograms.
//
// Design goals (see DESIGN.md, Observability):
//
//   * Near-zero cost when disabled. Every recording call starts with one
//     relaxed atomic load; when observability is off (the default) nothing
//     else happens, so instrumented kernels pay a predictable branch.
//   * No perturbation of results. Metrics only ever write into obs-owned
//     storage; instrumented code produces bit-identical outputs with
//     observability on or off, at any thread count.
//   * Deterministic totals under parallelism. Recording goes to a
//     thread-local shard; shards merge into the global store under a mutex
//     at scope exit (end of every exec pool job, thread exit, or snapshot).
//     Counter and bucket values are unsigned integers, whose sums are
//     independent of merge order, so a snapshot taken after a parallel
//     region is exactly the same at any thread count. The only
//     order-sensitive quantity is a histogram's floating-point `sum`
//     (documented caveat; count/buckets/min/max stay exact).
//
// Handles are cheap value types around a registry id; instrumented code
// declares them once per translation unit:
//
//   static obs::Counter c_phases("mcf.gk.phases");
//   ...
//   c_phases.inc();
//
// Names are dotted paths; the first segment is the subsystem ("graph",
// "mcf", "exec", ...), which run manifests use to report instrumented
// subsystem coverage. Registering the same name twice returns the same
// metric (histograms additionally require identical bounds).

#include <cstdint>
#include <string>
#include <vector>

namespace flattree::obs {

/// Global observability switch; disabled by default. Flip before the
/// instrumented region of interest (benches do it right after flag
/// parsing). Enabling is not retroactive: events recorded while disabled
/// are dropped, not buffered.
bool enabled();
void set_enabled(bool on);

using MetricId = std::uint32_t;

class Counter {
 public:
  /// Registers (or looks up) the counter `name`.
  explicit Counter(const std::string& name);
  void add(std::uint64_t n);
  void inc() { add(1); }
  MetricId id() const { return id_; }

 private:
  MetricId id_;
};

/// Point-in-time values (thread count, epsilon, ...). Writes go straight to
/// the global store under a mutex — keep gauges off per-item hot paths.
class Gauge {
 public:
  explicit Gauge(const std::string& name);
  void set(double v);
  /// Commutative max-merge (safe from any thread).
  void record_max(double v);
  MetricId id() const { return id_; }

 private:
  MetricId id_;
};

class Histogram {
 public:
  /// `bounds` are ascending upper bucket edges; observations land in the
  /// first bucket whose bound is >= the value, with one implicit overflow
  /// bucket at the end (bounds.size() + 1 buckets total).
  Histogram(const std::string& name, std::vector<double> bounds);
  void observe(double v);
  MetricId id() const { return id_; }

  /// `count` edges starting at `start`, each `factor` times the previous.
  static std::vector<double> exponential_bounds(double start, double factor,
                                                std::size_t count);
  static std::vector<double> linear_bounds(double start, double step, std::size_t count);

 private:
  MetricId id_;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 entries
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when count == 0
  double max = 0.0;
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;  ///< name-sorted
  std::vector<std::pair<std::string, double>> gauges;           ///< name-sorted, set only
  std::vector<HistogramSnapshot> histograms;                    ///< name-sorted
  /// Distinct first name segments with at least one non-zero value.
  std::vector<std::string> subsystems() const;
};

/// Merges the calling thread's shard into the global store. Exec pool
/// threads call this automatically at the end of every job; other threads
/// flush on exit and on snapshot_metrics().
void flush_thread_metrics();

/// Flushes the calling thread, then copies the global store. Call after
/// parallel regions complete (worker shards are empty between pool jobs).
MetricsSnapshot snapshot_metrics();

/// Zeroes every value in the global store and the calling thread's shard
/// (registrations survive). Benches/tests use this to scope a measurement.
void reset_metrics();

}  // namespace flattree::obs
