#pragma once
// Minimal JSON emission, validation, and parsing used by the observability
// exporters and the src/svc request protocol.
//
// JsonWriter produces compact, deterministic JSON (keys are emitted in the
// order the caller writes them; doubles use shortest round-trip formatting).
// json_valid() is a strict structural validator used by tests and by the
// manifest reader side of the tooling — it accepts exactly the subset the
// writers emit (RFC 8259 values, no trailing commas, UTF-8 passthrough).
// json_parse() is the materializing counterpart: a strict recursive-descent
// parser producing a JsonValue tree with line/column error reporting and
// stable error codes, rejecting non-finite numbers (the same guard GK
// applies to capacities — a 1e999 in a request must fail loudly, not leak
// an inf into solver state). Canonical re-emission (JsonValue::write) is a
// fixpoint: write(parse(write(v))) == write(v) byte for byte, which the
// service journal's replay guarantee builds on.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace flattree::obs {

/// Escapes a string for inclusion in a JSON document (adds no quotes).
std::string json_escape(const std::string& s);

/// Formats a double as a JSON number (round-trip precision; non-finite
/// values are clamped to 0 with a lossless textual marker impossible in
/// JSON, so callers should filter them first — see implementation).
std::string json_number(double value);

/// Incremental writer for one JSON document. Nesting is tracked so commas
/// and closers are placed automatically:
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("argv"); w.begin_array(); w.string_value("bench"); w.end_array();
///   w.key("seed"); w.int_value(42);
///   w.end_object();
///   std::string doc = w.str();
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  /// Emits an object key; must be followed by exactly one value.
  void key(const std::string& k);
  void string_value(const std::string& v);
  void int_value(std::int64_t v);
  void uint_value(std::uint64_t v);
  void double_value(double v);
  void bool_value(bool v);
  void null_value();
  /// Emits a pre-rendered JSON fragment verbatim (caller guarantees syntax).
  void raw_value(const std::string& fragment);

  const std::string& str() const { return out_; }

 private:
  void comma_for_value();
  std::string out_;
  /// One entry per open container: count of values emitted at that level.
  std::string stack_;  ///< 'o' = object, 'a' = array
  std::string counts_;  ///< parallel to stack_: 0 = empty, 1 = non-empty
  bool after_key_ = false;
};

/// Strict structural validation of a complete JSON document.
bool json_valid(const std::string& text);

// -- materializing parser ----------------------------------------------------

/// A parsed JSON value. Numbers split into Int (integral token that fits
/// int64, except "-0" which stays a Double so canonical re-emission
/// round-trips) and Double (everything else). Object key order is the
/// document order; duplicate keys are a parse error (the service protocol
/// must be deterministic, so "last key wins" ambiguity is rejected).
class JsonValue {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Int, Double, String, Array, Object };

  JsonValue() = default;
  /// Leaf constructors (arrays/objects are built by mutating the members).
  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool v);
  static JsonValue make_int(std::int64_t v);
  static JsonValue make_double(double v);
  static JsonValue make_string(std::string v);
  static JsonValue make_array();
  static JsonValue make_object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_int() const { return kind_ == Kind::Int; }
  bool is_double() const { return kind_ == Kind::Double; }
  /// Int or Double.
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  /// Typed accessors; the kind must match (std::logic_error otherwise).
  bool as_bool() const;
  std::int64_t as_int() const;
  /// Any number as a double (Int converts exactly up to 2^53).
  double as_number() const;
  const std::string& as_string() const;

  /// Array elements / object members (must be the matching kind).
  std::vector<JsonValue>& array();
  const std::vector<JsonValue>& array() const;
  std::vector<std::pair<std::string, JsonValue>>& object();
  const std::vector<std::pair<std::string, JsonValue>>& object() const;

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(const std::string& key) const;

  /// Appends to the canonical compact rendering (ints via decimal,
  /// doubles via json_number, keys in stored order).
  void write(JsonWriter& w) const;
  /// Canonical compact document for this value.
  std::string to_json() const;

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parse failure description. `code` is stable ("json.trailing",
/// "json.number_nonfinite", ...); line/column are 1-based and point at the
/// offending character.
struct JsonError {
  std::string code;
  std::string message;
  std::size_t line = 0;
  std::size_t column = 0;
};

/// Parses a complete JSON document into `out`. Returns false (and fills
/// `error`, when non-null) on malformed input. Strictly RFC 8259 plus the
/// deterministic-protocol extras: duplicate object keys rejected
/// ("json.duplicate_key"), numbers that overflow to +/-inf rejected
/// ("json.number_nonfinite"), nesting capped at depth 256 ("json.depth").
bool json_parse(const std::string& text, JsonValue& out, JsonError* error = nullptr);

}  // namespace flattree::obs
