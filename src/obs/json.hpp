#pragma once
// Minimal JSON emission and validation used by the observability exporters.
//
// JsonWriter produces compact, deterministic JSON (keys are emitted in the
// order the caller writes them; doubles use shortest round-trip formatting).
// json_valid() is a strict structural validator used by tests and by the
// manifest reader side of the tooling — it accepts exactly the subset the
// writers emit (RFC 8259 values, no trailing commas, UTF-8 passthrough).

#include <cstdint>
#include <string>

namespace flattree::obs {

/// Escapes a string for inclusion in a JSON document (adds no quotes).
std::string json_escape(const std::string& s);

/// Formats a double as a JSON number (round-trip precision; non-finite
/// values are clamped to 0 with a lossless textual marker impossible in
/// JSON, so callers should filter them first — see implementation).
std::string json_number(double value);

/// Incremental writer for one JSON document. Nesting is tracked so commas
/// and closers are placed automatically:
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("argv"); w.begin_array(); w.string_value("bench"); w.end_array();
///   w.key("seed"); w.int_value(42);
///   w.end_object();
///   std::string doc = w.str();
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  /// Emits an object key; must be followed by exactly one value.
  void key(const std::string& k);
  void string_value(const std::string& v);
  void int_value(std::int64_t v);
  void uint_value(std::uint64_t v);
  void double_value(double v);
  void bool_value(bool v);
  void null_value();
  /// Emits a pre-rendered JSON fragment verbatim (caller guarantees syntax).
  void raw_value(const std::string& fragment);

  const std::string& str() const { return out_; }

 private:
  void comma_for_value();
  std::string out_;
  /// One entry per open container: count of values emitted at that level.
  std::string stack_;  ///< 'o' = object, 'a' = array
  std::string counts_;  ///< parallel to stack_: 0 = empty, 1 = non-empty
  bool after_key_ = false;
};

/// Strict structural validation of a complete JSON document.
bool json_valid(const std::string& text);

}  // namespace flattree::obs
