#pragma once
// Yen's k-shortest loopless paths.
//
// Jellyfish-style topologies route over the k shortest paths between each
// switch pair [Singla et al., NSDI'12]; the routing module and the flow
// simulator consume this.

#include <vector>

#include "graph/graph.hpp"

namespace flattree::graph {

/// A simple (loopless) path with its length under the metric used to
/// compute it.
struct Path {
  std::vector<NodeId> nodes;  ///< source..target inclusive
  std::vector<LinkId> links;  ///< one per hop (nodes.size()-1 entries)
  double length = 0.0;        ///< total length under the supplied metric
};

/// Up to `k` shortest loopless paths from source to target, sorted by
/// (length, lexicographic nodes). `length[l]` must be >= 0. Returns fewer
/// than k paths when the graph does not contain that many.
std::vector<Path> yen_ksp(const Graph& g, NodeId source, NodeId target, std::size_t k,
                          const std::vector<double>& length);

/// Convenience: unit link lengths (hop-count shortest paths).
std::vector<Path> yen_ksp_hops(const Graph& g, NodeId source, NodeId target, std::size_t k);

/// All distinct shortest (minimum-hop) paths between source and target,
/// capped at `max_paths`. This enumerates ECMP path sets on Clos fabrics.
std::vector<Path> all_shortest_paths(const Graph& g, NodeId source, NodeId target,
                                     std::size_t max_paths);

}  // namespace flattree::graph
