#include "graph/bfs.hpp"

#include <algorithm>
#include <stdexcept>

#include <atomic>

#include "exec/parallel_for.hpp"
#include "graph/multi_bfs.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace flattree::graph {

namespace {

// Always-on settle total for the scalar kernels (one relaxed add per BFS
// call): the deterministic baseline the bench ops sweep compares the
// batched engine against.
std::atomic<std::uint64_t> g_scalar_settled{0};

// Per-BFS-call accounting only (never per node/edge): one branch per
// source, invisible on the disabled path, negligible when enabled.
obs::Counter c_bfs_runs("graph.bfs.runs");
obs::Counter c_bfs_visited("graph.bfs.nodes_visited");
obs::Histogram h_bfs_visited("graph.bfs.visited_per_source",
                             obs::Histogram::exponential_bounds(16.0, 4.0, 10));

inline void note_bfs(std::size_t visited) {
  if (!obs::enabled()) return;
  c_bfs_runs.inc();
  c_bfs_visited.add(visited);
  h_bfs_visited.observe(static_cast<double>(visited));
}

}  // namespace

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source) {
  std::vector<std::uint32_t> dist(g.node_count(), kUnreachable);
  std::vector<NodeId> queue;
  queue.reserve(g.node_count());
  dist[source] = 0;
  queue.push_back(source);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    NodeId u = queue[head];
    for (const Arc& arc : g.neighbors(u)) {
      if (dist[arc.to] == kUnreachable) {
        dist[arc.to] = dist[u] + 1;
        queue.push_back(arc.to);
      }
    }
  }
  g_scalar_settled.fetch_add(queue.size(), std::memory_order_relaxed);
  note_bfs(queue.size());
  return dist;
}

std::vector<std::uint32_t> bfs_distances_filtered(const Graph& g, NodeId source,
                                                  const std::vector<char>& allowed) {
  if (allowed.size() != g.node_count())
    throw std::invalid_argument("bfs_distances_filtered: mask size mismatch");
  if (!allowed[source])
    throw std::invalid_argument("bfs_distances_filtered: source not allowed");
  std::vector<std::uint32_t> dist(g.node_count(), kUnreachable);
  std::vector<NodeId> queue;
  queue.reserve(g.node_count());
  dist[source] = 0;
  queue.push_back(source);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    NodeId u = queue[head];
    for (const Arc& arc : g.neighbors(u)) {
      if (allowed[arc.to] && dist[arc.to] == kUnreachable) {
        dist[arc.to] = dist[u] + 1;
        queue.push_back(arc.to);
      }
    }
  }
  g_scalar_settled.fetch_add(queue.size(), std::memory_order_relaxed);
  note_bfs(queue.size());
  return dist;
}

std::uint64_t scalar_bfs_settled() {
  return g_scalar_settled.load(std::memory_order_relaxed);
}

void reset_scalar_bfs_settled() { g_scalar_settled.store(0, std::memory_order_relaxed); }

std::vector<std::vector<std::uint32_t>> apsp_distances(const Graph& g) {
  OBS_SPAN("graph.apsp");
  const std::size_t n = g.node_count();
  std::vector<std::vector<std::uint32_t>> dist(n);
  MultiBfsPool pool(g);
  exec::parallel_for_chunked(n, kBfsBatchWidth,
                             [&](std::size_t begin, std::size_t end, std::size_t) {
                               MultiBfsLease engine(pool);
                               std::vector<NodeId> batch(end - begin);
                               for (std::size_t s = begin; s < end; ++s)
                                 batch[s - begin] = static_cast<NodeId>(s);
                               engine->run(batch.data(), batch.size());
                               for (std::size_t s = begin; s < end; ++s) {
                                 auto row = engine->distances(s - begin);
                                 dist[s].assign(row.begin(), row.end());
                               }
                             });
  return dist;
}

BfsTree bfs_tree(const Graph& g, NodeId source) {
  BfsTree t;
  t.dist.assign(g.node_count(), kUnreachable);
  t.parent.assign(g.node_count(), kInvalidNode);
  t.parent_link.assign(g.node_count(), kInvalidLink);
  std::vector<NodeId> queue;
  t.dist[source] = 0;
  queue.push_back(source);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    NodeId u = queue[head];
    for (const Arc& arc : g.neighbors(u)) {
      if (t.dist[arc.to] == kUnreachable) {
        t.dist[arc.to] = t.dist[u] + 1;
        t.parent[arc.to] = u;
        t.parent_link[arc.to] = arc.link;
        queue.push_back(arc.to);
      }
    }
  }
  return t;
}

std::vector<NodeId> extract_path(const BfsTree& tree, NodeId target) {
  if (tree.dist[target] == kUnreachable) return {};
  std::vector<NodeId> path;
  for (NodeId v = target; v != kInvalidNode; v = tree.parent[v]) path.push_back(v);
  std::reverse(path.begin(), path.end());
  return path;
}

bool is_connected(const Graph& g) {
  if (g.node_count() == 0) return true;
  auto dist = bfs_distances(g, 0);
  for (auto d : dist)
    if (d == kUnreachable) return false;
  return true;
}

std::size_t component_count(const Graph& g) {
  std::size_t components = 0;
  std::vector<char> seen(g.node_count(), 0);
  std::vector<NodeId> queue;
  for (NodeId s = 0; s < g.node_count(); ++s) {
    if (seen[s]) continue;
    ++components;
    seen[s] = 1;
    queue.clear();
    queue.push_back(s);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      NodeId u = queue[head];
      for (const Arc& arc : g.neighbors(u)) {
        if (!seen[arc.to]) {
          seen[arc.to] = 1;
          queue.push_back(arc.to);
        }
      }
    }
  }
  return components;
}

}  // namespace flattree::graph
