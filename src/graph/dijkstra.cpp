#include "graph/dijkstra.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace flattree::graph {

namespace {

struct QueueEntry {
  double dist;
  NodeId node;
  bool operator>(const QueueEntry& o) const { return dist > o.dist; }
};

DijkstraResult run(const Graph& g, NodeId source, NodeId target,
                   const std::vector<double>& length) {
  if (length.size() != g.link_count())
    throw std::invalid_argument("dijkstra: length vector size mismatch");
  DijkstraResult r;
  r.dist.assign(g.node_count(), kInfDistance);
  r.parent.assign(g.node_count(), kInvalidNode);
  r.parent_link.assign(g.node_count(), kInvalidLink);

  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> heap;
  r.dist[source] = 0.0;
  heap.push({0.0, source});
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (d > r.dist[u]) continue;  // stale entry
    if (u == target) break;
    for (const Arc& arc : g.neighbors(u)) {
      double nd = d + length[arc.link];
      if (nd < r.dist[arc.to]) {
        r.dist[arc.to] = nd;
        r.parent[arc.to] = u;
        r.parent_link[arc.to] = arc.link;
        heap.push({nd, arc.to});
      }
    }
  }
  return r;
}

}  // namespace

DijkstraResult dijkstra(const Graph& g, NodeId source, const std::vector<double>& length) {
  return run(g, source, kInvalidNode, length);
}

DijkstraResult dijkstra_to(const Graph& g, NodeId source, NodeId target,
                           const std::vector<double>& length) {
  return run(g, source, target, length);
}

std::vector<NodeId> extract_path(const DijkstraResult& r, NodeId target) {
  if (r.dist[target] == kInfDistance) return {};
  std::vector<NodeId> path;
  for (NodeId v = target; v != kInvalidNode; v = r.parent[v]) path.push_back(v);
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<LinkId> extract_link_path(const DijkstraResult& r, NodeId target) {
  if (r.dist[target] == kInfDistance) return {};
  std::vector<LinkId> path;
  for (NodeId v = target; r.parent[v] != kInvalidNode; v = r.parent[v])
    path.push_back(r.parent_link[v]);
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace flattree::graph
