#pragma once
// Weighted single-source shortest paths on per-link length functions.
//
// The Garg-Koenemann multicommodity solver re-runs Dijkstra under an
// evolving length function, so lengths are supplied as an external vector
// indexed by LinkId rather than stored on the graph.

#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace flattree::graph {

inline constexpr double kInfDistance = std::numeric_limits<double>::infinity();

/// Shortest-path tree under a per-link length function.
struct DijkstraResult {
  std::vector<double> dist;        ///< kInfDistance when unreachable
  std::vector<NodeId> parent;      ///< kInvalidNode at source/unreached
  std::vector<LinkId> parent_link; ///< kInvalidLink at source/unreached
};

/// Full single-source run. `length[l]` must be >= 0 for every link.
DijkstraResult dijkstra(const Graph& g, NodeId source, const std::vector<double>& length);

/// Early-exit variant: stops once `target` is settled (dist/parents for
/// nodes settled after that point are unspecified but dist[target] and the
/// parent chain to it are exact).
DijkstraResult dijkstra_to(const Graph& g, NodeId source, NodeId target,
                           const std::vector<double>& length);

/// Reconstructs the node path source..target; empty when unreachable.
std::vector<NodeId> extract_path(const DijkstraResult& r, NodeId target);

/// Reconstructs the link path source..target; empty when unreachable or
/// source == target.
std::vector<LinkId> extract_link_path(const DijkstraResult& r, NodeId target);

}  // namespace flattree::graph
