#pragma once
// Graph-level metrics: weighted average path length, diameter, degrees.
//
// The paper's Figures 5 and 6 are average path lengths over *server pairs*.
// Servers attach to switches, so the server-pair APL is a switch-pair APL
// weighted by the product of server counts, plus the two server-switch
// attachment links. The weighted engine here takes a per-node weight vector
// (servers per switch) and an additive hop offset (2 for the attachment
// links).
//
// Engines: the production path runs sources through the bit-parallel
// batched BFS (graph::MultiSourceBfs, 64 sources per word); the *_scalar
// variants keep the original one-BFS-per-source kernels as the reference.
// Both fold per-source long-double partials in ascending source order, so
// batched and scalar results are bitwise-identical at any thread count —
// equivalence tests and the bench_micro ops sweep bank on that.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace flattree::graph {

/// Result of a weighted average-path-length computation.
struct AplResult {
  double average = 0.0;       ///< weighted mean distance (hops)
  std::uint64_t pairs = 0;    ///< number of weighted pairs (unordered)
  std::uint32_t max_dist = 0; ///< max distance seen among weighted pairs
};

/// Average over unordered pairs (u,v), u != v or same-node pairs among
/// distinct endpoints: sum over node pairs of w[u]*w[v] pairs at distance
/// d(u,v) + offset, plus w[u]*(w[u]-1)/2 same-node pairs at distance
/// `same_node_dist`. Throws if any weighted pair is disconnected.
AplResult weighted_apl(const Graph& g, const std::vector<std::uint32_t>& weight,
                       std::uint32_t offset, std::uint32_t same_node_dist);

/// Reference scalar kernel behind weighted_apl (one BFS per source);
/// bitwise-identical to the batched production path. Kept public for
/// equivalence tests and the bench_micro batched-vs-scalar ops sweep.
AplResult weighted_apl_scalar(const Graph& g, const std::vector<std::uint32_t>& weight,
                              std::uint32_t offset, std::uint32_t same_node_dist);

/// Same metric restricted to nodes with allowed[v] == true: paths may only
/// traverse allowed nodes (used for intra-pod APL in local-RG mode... the
/// paper measures pairs in the same pod but allows paths to exit the pod;
/// set `confine_paths` false for that reading).
AplResult weighted_apl_subset(const Graph& g, const std::vector<std::uint32_t>& weight,
                              const std::vector<char>& member, bool confine_paths,
                              std::uint32_t offset, std::uint32_t same_node_dist);

/// Reference scalar kernel behind weighted_apl_subset; see
/// weighted_apl_scalar.
AplResult weighted_apl_subset_scalar(const Graph& g,
                                     const std::vector<std::uint32_t>& weight,
                                     const std::vector<char>& member, bool confine_paths,
                                     std::uint32_t offset, std::uint32_t same_node_dist);

/// Unweighted APL with the unreachable-pair policy explicit: disconnected
/// pairs are *skipped* from the average and reported in
/// `unreachable_pairs` (contrast weighted_apl, which throws — a weighted
/// instance is a paper figure where a disconnected pair means a broken
/// topology, while the unweighted metric is also used on deliberately
/// partitioned graphs).
struct UnweightedAplResult {
  double average = 0.0;                ///< mean hops over connected pairs
  std::uint64_t pairs = 0;             ///< connected unordered pairs averaged
  std::uint64_t unreachable_pairs = 0; ///< skipped disconnected unordered pairs
};

/// Unweighted switch-level APL plus the skip accounting described on
/// UnweightedAplResult.
UnweightedAplResult unweighted_apl_stats(const Graph& g);

/// Unweighted switch-level APL over all connected node pairs; disconnected
/// pairs are skipped silently (use unweighted_apl_stats to observe how
/// many were skipped).
double unweighted_apl(const Graph& g);

/// Graph diameter (max eccentricity); throws on disconnected graphs.
std::uint32_t diameter(const Graph& g);

/// Histogram of node degrees (index = degree).
std::vector<std::size_t> degree_histogram(const Graph& g);

}  // namespace flattree::graph
