#include "graph/multi_bfs.hpp"

#include <atomic>
#include <bit>
#include <cstring>
#include <stdexcept>

#include "graph/bfs.hpp"
#include "obs/metrics.hpp"

namespace flattree::graph {

namespace {

// Deterministic process-wide totals: each batch adds its (deterministic)
// local counts once, so the sums are independent of batch scheduling.
std::atomic<std::uint64_t> g_batches{0};
std::atomic<std::uint64_t> g_sources{0};
std::atomic<std::uint64_t> g_levels{0};
std::atomic<std::uint64_t> g_node_expansions{0};
std::atomic<std::uint64_t> g_words_touched{0};
std::atomic<std::uint64_t> g_nodes_settled{0};

// The batched engine bills the same per-source BFS counters as the scalar
// kernels (graph.bfs.*) so manifests stay comparable across engines, plus
// engine-level counters for the batch mechanics.
obs::Counter c_bfs_runs("graph.bfs.runs");
obs::Counter c_bfs_visited("graph.bfs.nodes_visited");
obs::Histogram h_bfs_visited("graph.bfs.visited_per_source",
                             obs::Histogram::exponential_bounds(16.0, 4.0, 10));
obs::Counter c_batches("graph.bitbfs.batches");
obs::Counter c_expansions("graph.bitbfs.node_expansions");
obs::Counter c_words("graph.bitbfs.words_touched");

DistanceAuditHook& audit_hook() {
  static DistanceAuditHook hook;
  return hook;
}

}  // namespace

MultiBfsStats multi_bfs_stats() {
  MultiBfsStats s;
  s.batches = g_batches.load(std::memory_order_relaxed);
  s.sources = g_sources.load(std::memory_order_relaxed);
  s.levels = g_levels.load(std::memory_order_relaxed);
  s.node_expansions = g_node_expansions.load(std::memory_order_relaxed);
  s.words_touched = g_words_touched.load(std::memory_order_relaxed);
  s.nodes_settled = g_nodes_settled.load(std::memory_order_relaxed);
  return s;
}

void reset_multi_bfs_stats() {
  g_batches.store(0, std::memory_order_relaxed);
  g_sources.store(0, std::memory_order_relaxed);
  g_levels.store(0, std::memory_order_relaxed);
  g_node_expansions.store(0, std::memory_order_relaxed);
  g_words_touched.store(0, std::memory_order_relaxed);
  g_nodes_settled.store(0, std::memory_order_relaxed);
}

void set_distance_audit_hook(DistanceAuditHook hook) { audit_hook() = std::move(hook); }

MultiSourceBfs::MultiSourceBfs(const Graph& g) : g_(&g), node_count_(g.node_count()) {
  g.ensure_csr();
  visited_.resize(node_count_, 0);
  frontier_.resize(node_count_, 0);
  next_.resize(node_count_, 0);
}

std::span<const std::uint32_t> MultiSourceBfs::distances(std::size_t i) const {
  if (i >= count_) throw std::out_of_range("MultiSourceBfs::distances: bad index");
  return {dist_.data() + i * node_count_, node_count_};
}

void MultiSourceBfs::run(const NodeId* sources, std::size_t count,
                         const std::vector<char>* allowed) {
  if (count == 0 || count > kBfsBatchWidth)
    throw std::invalid_argument("MultiSourceBfs::run: batch size out of range");
  if (allowed && allowed->size() != node_count_)
    throw std::invalid_argument("MultiSourceBfs::run: mask size mismatch");

  const std::size_t n = node_count_;
  count_ = count;
  dist_.resize(count * n);
  std::fill(dist_.begin(), dist_.end(), kUnreachable);
  std::fill(visited_.begin(), visited_.end(), 0);
  std::fill(frontier_.begin(), frontier_.end(), 0);
  std::fill(next_.begin(), next_.end(), 0);
  std::fill(reached_, reached_ + kBfsBatchWidth, 0);

  for (std::size_t i = 0; i < count; ++i) {
    NodeId s = sources[i];
    if (s >= n) throw std::invalid_argument("MultiSourceBfs::run: source out of range");
    if (allowed && !(*allowed)[s])
      throw std::invalid_argument("MultiSourceBfs::run: source not allowed");
    visited_[s] |= std::uint64_t{1} << i;
    frontier_[s] |= std::uint64_t{1} << i;
    dist_[i * n + s] = 0;
    ++reached_[i];
  }

  // Local counters folded into the globals once at the end (deterministic:
  // the scan order below is fixed, independent of threads or pool state).
  std::uint64_t levels = 0;
  std::uint64_t expansions = 0;
  std::uint64_t words = 0;
  std::uint64_t settled = count;  // sources settle at level 0

  const char* mask = allowed ? allowed->data() : nullptr;
  for (;;) {
    ++levels;
    // Expansion sweep: nodes in ascending id, arcs in CSR order. Word
    // accounting — one read per frontier word, one read per neighbour's
    // visited word, two writes when new bits land.
    for (NodeId u = 0; u < n; ++u) {
      const std::uint64_t fw = frontier_[u];
      ++words;
      if (!fw) continue;
      ++expansions;
      for (const Arc& arc : g_->neighbors(u)) {
        const NodeId v = arc.to;
        if (mask && !mask[v]) continue;
        ++words;
        const std::uint64_t fresh = fw & ~visited_[v];
        if (fresh) {
          visited_[v] |= fresh;
          next_[v] |= fresh;
          words += 2;
        }
      }
    }
    // Settle sweep: assign this level's distance per fresh (source, node)
    // bit and detect termination.
    bool any = false;
    const std::uint32_t level32 = static_cast<std::uint32_t>(levels);
    for (NodeId v = 0; v < n; ++v) {
      std::uint64_t nw = next_[v];
      ++words;
      if (!nw) continue;
      any = true;
      while (nw) {
        const unsigned i = static_cast<unsigned>(std::countr_zero(nw));
        nw &= nw - 1;
        dist_[i * n + v] = level32;
        ++reached_[i];
        ++settled;
      }
    }
    if (!any) {
      --levels;  // the last sweep found an empty next frontier
      break;
    }
    std::swap(frontier_, next_);
    std::fill(next_.begin(), next_.end(), 0);
    words += n;
  }

  g_batches.fetch_add(1, std::memory_order_relaxed);
  g_sources.fetch_add(count, std::memory_order_relaxed);
  g_levels.fetch_add(levels, std::memory_order_relaxed);
  g_node_expansions.fetch_add(expansions, std::memory_order_relaxed);
  g_words_touched.fetch_add(words, std::memory_order_relaxed);
  g_nodes_settled.fetch_add(settled, std::memory_order_relaxed);

  if (obs::enabled()) {
    c_batches.inc();
    c_expansions.add(expansions);
    c_words.add(words);
    // Same per-source accounting as the scalar kernels: every (source,
    // node) pair settles exactly once in either engine.
    for (std::size_t i = 0; i < count; ++i) {
      c_bfs_runs.inc();
      c_bfs_visited.add(reached_[i]);
      h_bfs_visited.observe(static_cast<double>(reached_[i]));
    }
  }

  if (const DistanceAuditHook& hook = audit_hook()) {
    std::vector<std::uint32_t> row(dist_.begin(),
                                   dist_.begin() + static_cast<std::ptrdiff_t>(n));
    hook(*g_, sources[0], row);
  }
}

std::unique_ptr<MultiSourceBfs> MultiBfsPool::acquire() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!free_.empty()) {
      auto engine = std::move(free_.back());
      free_.pop_back();
      return engine;
    }
  }
  return std::make_unique<MultiSourceBfs>(*g_);
}

void MultiBfsPool::release(std::unique_ptr<MultiSourceBfs> engine) {
  std::lock_guard<std::mutex> lock(mutex_);
  free_.push_back(std::move(engine));
}

}  // namespace flattree::graph
