#include "graph/ksp.hpp"

#include <algorithm>
#include <queue>
#include <set>
#include <stdexcept>

#include "graph/bfs.hpp"
#include "graph/dijkstra.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace flattree::graph {

namespace {

obs::Counter c_ksp_queries("graph.ksp.queries");
obs::Counter c_ksp_paths("graph.ksp.paths_returned");
obs::Counter c_ksp_spurs("graph.ksp.spur_dijkstras");
obs::Counter c_ksp_candidates("graph.ksp.candidates_generated");
obs::Counter c_ksp_pruned("graph.ksp.candidates_pruned");

Path make_path(const Graph& g, std::vector<NodeId> nodes, std::vector<LinkId> links,
               const std::vector<double>& length) {
  Path p;
  p.nodes = std::move(nodes);
  p.links = std::move(links);
  for (LinkId l : p.links) p.length += length[l];
  (void)g;
  return p;
}

/// Dijkstra on a graph with some links/nodes masked out.
DijkstraResult masked_dijkstra(const Graph& g, NodeId source,
                               const std::vector<double>& length,
                               const std::vector<char>& node_banned,
                               const std::vector<char>& link_banned) {
  DijkstraResult r;
  r.dist.assign(g.node_count(), kInfDistance);
  r.parent.assign(g.node_count(), kInvalidNode);
  r.parent_link.assign(g.node_count(), kInvalidLink);
  if (node_banned[source]) return r;

  struct Entry {
    double d;
    NodeId v;
    bool operator>(const Entry& o) const { return d > o.d; }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  r.dist[source] = 0.0;
  heap.push({0.0, source});
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (d > r.dist[u]) continue;
    for (const Arc& arc : g.neighbors(u)) {
      if (node_banned[arc.to] || link_banned[arc.link]) continue;
      double nd = d + length[arc.link];
      if (nd < r.dist[arc.to]) {
        r.dist[arc.to] = nd;
        r.parent[arc.to] = u;
        r.parent_link[arc.to] = arc.link;
        heap.push({nd, arc.to});
      }
    }
  }
  return r;
}

bool path_less(const Path& a, const Path& b) {
  if (a.length != b.length) return a.length < b.length;
  return a.nodes < b.nodes;
}

}  // namespace

std::vector<Path> yen_ksp(const Graph& g, NodeId source, NodeId target, std::size_t k,
                          const std::vector<double>& length) {
  if (length.size() != g.link_count())
    throw std::invalid_argument("yen_ksp: length vector size mismatch");
  if (source == target) throw std::invalid_argument("yen_ksp: source == target");
  OBS_SPAN("graph.ksp.query");
  c_ksp_queries.inc();
  std::vector<Path> result;
  if (k == 0) return result;

  auto first = dijkstra_to(g, source, target, length);
  if (first.dist[target] == kInfDistance) return result;
  result.push_back(
      make_path(g, extract_path(first, target), extract_link_path(first, target), length));

  // Candidate pool ordered by (length, nodes); a std::set keeps them unique.
  auto cmp = [](const Path& a, const Path& b) { return path_less(a, b); };
  std::set<Path, decltype(cmp)> candidates(cmp);

  std::vector<char> node_banned(g.node_count(), 0);
  std::vector<char> link_banned(g.link_count(), 0);

  while (result.size() < k) {
    const Path& prev = result.back();
    // Each prefix of the previous path spawns a deviation candidate.
    for (std::size_t i = 0; i + 1 < prev.nodes.size(); ++i) {
      NodeId spur = prev.nodes[i];
      std::fill(node_banned.begin(), node_banned.end(), 0);
      std::fill(link_banned.begin(), link_banned.end(), 0);

      // Ban links used by any accepted path sharing this root.
      for (const Path& p : result) {
        if (p.nodes.size() > i &&
            std::equal(p.nodes.begin(), p.nodes.begin() + static_cast<long>(i) + 1,
                       prev.nodes.begin())) {
          if (p.links.size() > i) link_banned[p.links[i]] = 1;
        }
      }
      // Ban root nodes (except the spur) to keep paths loopless.
      for (std::size_t j = 0; j < i; ++j) node_banned[prev.nodes[j]] = 1;

      c_ksp_spurs.inc();
      auto spur_result = masked_dijkstra(g, spur, length, node_banned, link_banned);
      if (spur_result.dist[target] == kInfDistance) continue;

      Path candidate;
      candidate.nodes.assign(prev.nodes.begin(), prev.nodes.begin() + static_cast<long>(i) + 1);
      candidate.links.assign(prev.links.begin(), prev.links.begin() + static_cast<long>(i));
      auto spur_nodes = extract_path(spur_result, target);
      auto spur_links = extract_link_path(spur_result, target);
      candidate.nodes.insert(candidate.nodes.end(), spur_nodes.begin() + 1, spur_nodes.end());
      candidate.links.insert(candidate.links.end(), spur_links.begin(), spur_links.end());
      for (LinkId l : candidate.links) candidate.length += length[l];
      c_ksp_candidates.inc();
      if (!candidates.insert(std::move(candidate)).second) c_ksp_pruned.inc();
    }
    if (candidates.empty()) break;
    result.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  // Candidates still pooled when k paths are found were generated for
  // nothing — count them as pruned too.
  c_ksp_pruned.add(candidates.size());
  c_ksp_paths.add(result.size());
  return result;
}

std::vector<Path> yen_ksp_hops(const Graph& g, NodeId source, NodeId target, std::size_t k) {
  std::vector<double> unit(g.link_count(), 1.0);
  return yen_ksp(g, source, target, k, unit);
}

std::vector<Path> all_shortest_paths(const Graph& g, NodeId source, NodeId target,
                                     std::size_t max_paths) {
  if (source == target) throw std::invalid_argument("all_shortest_paths: source == target");
  auto dist = bfs_distances(g, source);
  if (dist[target] == kUnreachable) return {};
  // Depth-first enumeration of the shortest-path DAG (arcs where
  // dist decreases by one, walking backwards from target).
  std::vector<Path> out;
  std::vector<NodeId> node_stack{target};
  std::vector<LinkId> link_stack;

  struct Frame {
    NodeId node;
    std::size_t next_arc;
  };
  std::vector<Frame> frames{{target, 0}};
  while (!frames.empty()) {
    Frame& f = frames.back();
    if (f.node == source) {
      Path p;
      p.nodes.assign(node_stack.rbegin(), node_stack.rend());
      p.links.assign(link_stack.rbegin(), link_stack.rend());
      p.length = static_cast<double>(p.links.size());
      out.push_back(std::move(p));
      if (out.size() >= max_paths) break;
      frames.pop_back();
      node_stack.pop_back();
      if (!link_stack.empty()) link_stack.pop_back();
      continue;
    }
    auto arcs = g.neighbors(f.node);
    bool descended = false;
    while (f.next_arc < arcs.size()) {
      const Arc& arc = arcs[f.next_arc++];
      if (dist[arc.to] + 1 == dist[f.node]) {
        node_stack.push_back(arc.to);
        link_stack.push_back(arc.link);
        frames.push_back({arc.to, 0});
        descended = true;
        break;
      }
    }
    if (!descended) {
      frames.pop_back();
      node_stack.pop_back();
      if (!link_stack.empty()) link_stack.pop_back();
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Path& a, const Path& b) { return a.nodes < b.nodes; });
  return out;
}

}  // namespace flattree::graph
