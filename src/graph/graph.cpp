#include "graph/graph.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"

namespace flattree::graph {

namespace {

// CSR maintenance accounting: one event per build/patch, never per arc.
obs::Counter c_csr_builds("graph.csr.full_builds");
obs::Counter c_csr_patches("graph.csr.patches");
obs::Counter c_csr_patched_links("graph.csr.patched_links");

}  // namespace

Graph::Graph(std::size_t node_count) : node_count_(node_count) {}

Graph::Graph(const Graph& other)
    : node_count_(other.node_count_),
      links_(other.links_),
      live_(other.live_),
      live_link_count_(other.live_link_count_) {}

Graph& Graph::operator=(const Graph& other) {
  if (this != &other) {
    node_count_ = other.node_count_;
    links_ = other.links_;
    live_ = other.live_;
    live_link_count_ = other.live_link_count_;
    journal_.clear();
    csr_structurally_stale_ = true;
    csr_pending_.clear();
    csr_valid_.store(false, std::memory_order_release);
  }
  return *this;
}

Graph::Graph(Graph&& other) noexcept
    : node_count_(other.node_count_),
      links_(std::move(other.links_)),
      live_(std::move(other.live_)),
      live_link_count_(other.live_link_count_) {}

Graph& Graph::operator=(Graph&& other) noexcept {
  if (this != &other) {
    node_count_ = other.node_count_;
    links_ = std::move(other.links_);
    live_ = std::move(other.live_);
    live_link_count_ = other.live_link_count_;
    journal_.clear();
    csr_structurally_stale_ = true;
    csr_pending_.clear();
    csr_valid_.store(false, std::memory_order_release);
  }
  return *this;
}

void Graph::note_structural_edit(GraphEdit::Kind kind, LinkId id) {
  ++edit_epoch_;
  journal_.push_back(GraphEdit{kind, id});
  csr_structurally_stale_ = true;
  csr_pending_.clear();
  // Release so a reader sequenced after this mutation (the documented
  // contract) acquires a coherent view of the invalidation.
  csr_valid_.store(false, std::memory_order_release);
}

void Graph::note_liveness_edit(GraphEdit::Kind kind, LinkId id) {
  ++edit_epoch_;
  journal_.push_back(GraphEdit{kind, id});
  if (csr_built_ && !csr_structurally_stale_)
    csr_pending_.emplace_back(id, kind == GraphEdit::Kind::Restore);
  csr_valid_.store(false, std::memory_order_release);
}

NodeId Graph::add_nodes(std::size_t count) {
  NodeId first = static_cast<NodeId>(node_count_);
  node_count_ += count;
  ++edit_epoch_;
  csr_structurally_stale_ = true;
  csr_pending_.clear();
  csr_valid_.store(false, std::memory_order_release);
  return first;
}

LinkId Graph::add_link(NodeId a, NodeId b, double capacity) {
  if (a >= node_count_ || b >= node_count_)
    throw std::out_of_range("Graph::add_link: endpoint out of range");
  if (a == b) throw std::invalid_argument("Graph::add_link: self-loop");
  if (capacity <= 0.0) throw std::invalid_argument("Graph::add_link: non-positive capacity");
  links_.push_back(Link{a, b, capacity});
  if (!live_.empty()) live_.push_back(1);
  ++live_link_count_;
  LinkId id = static_cast<LinkId>(links_.size() - 1);
  note_structural_edit(GraphEdit::Kind::Add, id);
  return id;
}

void Graph::remove_link(LinkId id) {
  if (id >= links_.size()) throw std::out_of_range("Graph::remove_link: bad link id");
  if (live_.empty()) live_.assign(links_.size(), 1);
  if (!live_[id]) throw std::logic_error("Graph::remove_link: link already removed");
  live_[id] = 0;
  --live_link_count_;
  note_liveness_edit(GraphEdit::Kind::Remove, id);
}

void Graph::restore_link(LinkId id) {
  if (id >= links_.size()) throw std::out_of_range("Graph::restore_link: bad link id");
  if (live_.empty() || live_[id])
    throw std::logic_error("Graph::restore_link: link is live");
  live_[id] = 1;
  ++live_link_count_;
  note_liveness_edit(GraphEdit::Kind::Restore, id);
}

void Graph::set_capacity(LinkId id, double capacity) {
  if (id >= links_.size()) throw std::out_of_range("Graph::set_capacity: bad link id");
  if (!(capacity > 0.0) || !std::isfinite(capacity))
    throw std::invalid_argument("Graph::set_capacity: non-positive or non-finite capacity");
  links_[id].capacity = capacity;
  ++edit_epoch_;
  journal_.push_back(GraphEdit{GraphEdit::Kind::SetCapacity, id});
  // The CSR stores no capacities, so the adjacency index stays valid.
}

std::size_t Graph::degree(NodeId node) const {
  auto arcs = neighbors(node);
  return arcs.size();
}

void Graph::build_csr() const {
  // Segments are sized by ALL link slots (tombstones included) so later
  // remove/restore deltas patch by swapping inside a fixed segment. Live
  // arcs are written first, dead arcs are parked behind them.
  csr_offset_.assign(node_count_ + 1, 0);
  for (const Link& l : links_) {
    ++csr_offset_[l.a + 1];
    ++csr_offset_[l.b + 1];
  }
  for (std::size_t i = 1; i <= node_count_; ++i) csr_offset_[i] += csr_offset_[i - 1];
  csr_arcs_.resize(links_.size() * 2);
  std::vector<std::uint32_t> cursor(csr_offset_.begin(), csr_offset_.end() - 1);
  for (LinkId id = 0; id < links_.size(); ++id) {
    if (!link_live(id)) continue;
    const Link& l = links_[id];
    csr_arcs_[cursor[l.a]++] = Arc{l.b, id};
    csr_arcs_[cursor[l.b]++] = Arc{l.a, id};
  }
  csr_live_deg_.assign(node_count_, 0);
  for (NodeId v = 0; v < node_count_; ++v) csr_live_deg_[v] = cursor[v] - csr_offset_[v];
  for (LinkId id = 0; id < links_.size(); ++id) {
    if (link_live(id)) continue;
    const Link& l = links_[id];
    csr_arcs_[cursor[l.a]++] = Arc{l.b, id};
    csr_arcs_[cursor[l.b]++] = Arc{l.a, id};
  }
  if (obs::enabled()) c_csr_builds.inc();
}

bool Graph::patch_csr() const {
  // In-place application of the pending liveness flips. Patching is
  // O(delta * degree); past ~an eighth of the link slots a full O(V + E)
  // rebuild is cheaper, so the caller falls back.
  const std::size_t patch_cap = std::max<std::size_t>(16, links_.size() / 8);
  if (csr_pending_.size() > patch_cap) return false;
  for (auto [id, now_live] : csr_pending_) {
    const Link& l = links_[id];
    for (NodeId v : {l.a, l.b}) {
      const std::uint32_t begin = csr_offset_[v];
      const std::uint32_t live_end = begin + csr_live_deg_[v];
      const std::uint32_t end = csr_offset_[v + 1];
      if (now_live) {
        for (std::uint32_t i = live_end; i < end; ++i) {
          if (csr_arcs_[i].link == id) {
            std::swap(csr_arcs_[i], csr_arcs_[live_end]);
            ++csr_live_deg_[v];
            break;
          }
        }
      } else {
        for (std::uint32_t i = begin; i < live_end; ++i) {
          if (csr_arcs_[i].link == id) {
            std::swap(csr_arcs_[i], csr_arcs_[live_end - 1]);
            --csr_live_deg_[v];
            break;
          }
        }
      }
    }
  }
  if (obs::enabled()) {
    c_csr_patches.inc();
    c_csr_patched_links.add(csr_pending_.size());
  }
  return true;
}

void Graph::ensure_csr() const {
  // Double-checked lazy build: concurrent readers (parallel BFS/Dijkstra
  // workers sharing one Graph) may race to the first neighbors() call. The
  // release-store publishes the vectors filled under the lock; the acquire
  // load in the fast path synchronizes with it. Every mutator — including
  // the edit-journal path (remove/restore) — stores csr_valid_ = false, so
  // a reader sequenced after the mutation never sees a stale index.
  if (csr_valid_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(csr_mutex_);
  if (csr_valid_.load(std::memory_order_relaxed)) return;
  if (csr_built_ && !csr_structurally_stale_ && patch_csr()) {
    csr_pending_.clear();
  } else {
    build_csr();
    csr_built_ = true;
    csr_structurally_stale_ = false;
    csr_pending_.clear();
  }
  csr_valid_.store(true, std::memory_order_release);
}

std::span<const Arc> Graph::neighbors(NodeId node) const {
  if (node >= node_count_) throw std::out_of_range("Graph::neighbors: node out of range");
  ensure_csr();
  return {csr_arcs_.data() + csr_offset_[node], csr_live_deg_[node]};
}

bool Graph::connected(NodeId a, NodeId b) const {
  for (const Arc& arc : neighbors(a))
    if (arc.to == b) return true;
  return false;
}

double Graph::capacity_between(NodeId a, NodeId b) const {
  double total = 0.0;
  for (const Arc& arc : neighbors(a))
    if (arc.to == b) total += links_[arc.link].capacity;
  return total;
}

}  // namespace flattree::graph
