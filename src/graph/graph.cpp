#include "graph/graph.hpp"

#include <stdexcept>

namespace flattree::graph {

Graph::Graph(std::size_t node_count) : node_count_(node_count) {}

NodeId Graph::add_nodes(std::size_t count) {
  NodeId first = static_cast<NodeId>(node_count_);
  node_count_ += count;
  csr_valid_ = false;
  return first;
}

LinkId Graph::add_link(NodeId a, NodeId b, double capacity) {
  if (a >= node_count_ || b >= node_count_)
    throw std::out_of_range("Graph::add_link: endpoint out of range");
  if (a == b) throw std::invalid_argument("Graph::add_link: self-loop");
  if (capacity <= 0.0) throw std::invalid_argument("Graph::add_link: non-positive capacity");
  links_.push_back(Link{a, b, capacity});
  csr_valid_ = false;
  return static_cast<LinkId>(links_.size() - 1);
}

std::size_t Graph::degree(NodeId node) const {
  auto arcs = neighbors(node);
  return arcs.size();
}

void Graph::build_csr() const {
  csr_offset_.assign(node_count_ + 1, 0);
  for (const Link& l : links_) {
    ++csr_offset_[l.a + 1];
    ++csr_offset_[l.b + 1];
  }
  for (std::size_t i = 1; i <= node_count_; ++i) csr_offset_[i] += csr_offset_[i - 1];
  csr_arcs_.resize(links_.size() * 2);
  std::vector<std::uint32_t> cursor(csr_offset_.begin(), csr_offset_.end() - 1);
  for (LinkId id = 0; id < links_.size(); ++id) {
    const Link& l = links_[id];
    csr_arcs_[cursor[l.a]++] = Arc{l.b, id};
    csr_arcs_[cursor[l.b]++] = Arc{l.a, id};
  }
  csr_valid_ = true;
}

std::span<const Arc> Graph::neighbors(NodeId node) const {
  if (node >= node_count_) throw std::out_of_range("Graph::neighbors: node out of range");
  if (!csr_valid_) build_csr();
  return {csr_arcs_.data() + csr_offset_[node], csr_offset_[node + 1] - csr_offset_[node]};
}

bool Graph::connected(NodeId a, NodeId b) const {
  for (const Arc& arc : neighbors(a))
    if (arc.to == b) return true;
  return false;
}

double Graph::capacity_between(NodeId a, NodeId b) const {
  double total = 0.0;
  for (const Arc& arc : neighbors(a))
    if (arc.to == b) total += links_[arc.link].capacity;
  return total;
}

}  // namespace flattree::graph
