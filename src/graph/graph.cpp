#include "graph/graph.hpp"

#include <mutex>
#include <stdexcept>
#include <utility>

namespace flattree::graph {

Graph::Graph(std::size_t node_count) : node_count_(node_count) {}

Graph::Graph(const Graph& other)
    : node_count_(other.node_count_), links_(other.links_) {}

Graph& Graph::operator=(const Graph& other) {
  if (this != &other) {
    node_count_ = other.node_count_;
    links_ = other.links_;
    csr_valid_.store(false, std::memory_order_relaxed);
  }
  return *this;
}

Graph::Graph(Graph&& other) noexcept
    : node_count_(other.node_count_), links_(std::move(other.links_)) {}

Graph& Graph::operator=(Graph&& other) noexcept {
  if (this != &other) {
    node_count_ = other.node_count_;
    links_ = std::move(other.links_);
    csr_valid_.store(false, std::memory_order_relaxed);
  }
  return *this;
}

NodeId Graph::add_nodes(std::size_t count) {
  NodeId first = static_cast<NodeId>(node_count_);
  node_count_ += count;
  csr_valid_.store(false, std::memory_order_relaxed);
  return first;
}

LinkId Graph::add_link(NodeId a, NodeId b, double capacity) {
  if (a >= node_count_ || b >= node_count_)
    throw std::out_of_range("Graph::add_link: endpoint out of range");
  if (a == b) throw std::invalid_argument("Graph::add_link: self-loop");
  if (capacity <= 0.0) throw std::invalid_argument("Graph::add_link: non-positive capacity");
  links_.push_back(Link{a, b, capacity});
  csr_valid_.store(false, std::memory_order_relaxed);
  return static_cast<LinkId>(links_.size() - 1);
}

std::size_t Graph::degree(NodeId node) const {
  auto arcs = neighbors(node);
  return arcs.size();
}

void Graph::build_csr() const {
  csr_offset_.assign(node_count_ + 1, 0);
  for (const Link& l : links_) {
    ++csr_offset_[l.a + 1];
    ++csr_offset_[l.b + 1];
  }
  for (std::size_t i = 1; i <= node_count_; ++i) csr_offset_[i] += csr_offset_[i - 1];
  csr_arcs_.resize(links_.size() * 2);
  std::vector<std::uint32_t> cursor(csr_offset_.begin(), csr_offset_.end() - 1);
  for (LinkId id = 0; id < links_.size(); ++id) {
    const Link& l = links_[id];
    csr_arcs_[cursor[l.a]++] = Arc{l.b, id};
    csr_arcs_[cursor[l.b]++] = Arc{l.a, id};
  }
}

void Graph::ensure_csr() const {
  // Double-checked lazy build: concurrent readers (parallel BFS/Dijkstra
  // workers sharing one Graph) may race to the first neighbors() call. The
  // release-store publishes the vectors filled under the lock; the acquire
  // load in the fast path synchronizes with it.
  if (csr_valid_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(csr_mutex_);
  if (csr_valid_.load(std::memory_order_relaxed)) return;
  build_csr();
  csr_valid_.store(true, std::memory_order_release);
}

std::span<const Arc> Graph::neighbors(NodeId node) const {
  if (node >= node_count_) throw std::out_of_range("Graph::neighbors: node out of range");
  ensure_csr();
  return {csr_arcs_.data() + csr_offset_[node], csr_offset_[node + 1] - csr_offset_[node]};
}

bool Graph::connected(NodeId a, NodeId b) const {
  for (const Arc& arc : neighbors(a))
    if (arc.to == b) return true;
  return false;
}

double Graph::capacity_between(NodeId a, NodeId b) const {
  double total = 0.0;
  for (const Arc& arc : neighbors(a))
    if (arc.to == b) total += links_[arc.link].capacity;
  return total;
}

}  // namespace flattree::graph
