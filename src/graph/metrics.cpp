#include "graph/metrics.hpp"

#include <stdexcept>

#include "graph/bfs.hpp"

namespace flattree::graph {

namespace {

AplResult accumulate_apl(const Graph& g, const std::vector<std::uint32_t>& weight,
                         const std::vector<char>* member, bool confine_paths,
                         std::uint32_t offset, std::uint32_t same_node_dist) {
  if (weight.size() != g.node_count())
    throw std::invalid_argument("weighted_apl: weight size mismatch");

  // Unordered pairs: iterate sources in id order and count only targets
  // with a larger id, plus same-node pairs once.
  long double total = 0.0L;
  std::uint64_t pairs = 0;
  std::uint32_t max_dist = 0;

  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (weight[u] == 0) continue;
    if (member != nullptr && !(*member)[u]) continue;
    // Same-node server pairs.
    std::uint64_t wu = weight[u];
    if (wu >= 2) {
      std::uint64_t p = wu * (wu - 1) / 2;
      total += static_cast<long double>(p) * same_node_dist;
      pairs += p;
      max_dist = std::max(max_dist, same_node_dist);
    }
    std::vector<std::uint32_t> dist =
        confine_paths && member != nullptr ? bfs_distances_filtered(g, u, *member)
                                           : bfs_distances(g, u);
    for (NodeId v = u + 1; v < g.node_count(); ++v) {
      if (weight[v] == 0) continue;
      if (member != nullptr && !(*member)[v]) continue;
      if (dist[v] == kUnreachable)
        throw std::runtime_error("weighted_apl: weighted pair disconnected");
      std::uint64_t p = wu * weight[v];
      std::uint32_t d = dist[v] + offset;
      total += static_cast<long double>(p) * d;
      pairs += p;
      max_dist = std::max(max_dist, d);
    }
  }
  AplResult r;
  r.pairs = pairs;
  r.max_dist = max_dist;
  r.average = pairs ? static_cast<double>(total / static_cast<long double>(pairs)) : 0.0;
  return r;
}

}  // namespace

AplResult weighted_apl(const Graph& g, const std::vector<std::uint32_t>& weight,
                       std::uint32_t offset, std::uint32_t same_node_dist) {
  return accumulate_apl(g, weight, nullptr, false, offset, same_node_dist);
}

AplResult weighted_apl_subset(const Graph& g, const std::vector<std::uint32_t>& weight,
                              const std::vector<char>& member, bool confine_paths,
                              std::uint32_t offset, std::uint32_t same_node_dist) {
  if (member.size() != g.node_count())
    throw std::invalid_argument("weighted_apl_subset: member mask size mismatch");
  return accumulate_apl(g, weight, &member, confine_paths, offset, same_node_dist);
}

double unweighted_apl(const Graph& g) {
  long double total = 0.0L;
  std::uint64_t pairs = 0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    auto dist = bfs_distances(g, u);
    for (NodeId v = u + 1; v < g.node_count(); ++v) {
      if (dist[v] == kUnreachable) continue;
      total += dist[v];
      ++pairs;
    }
  }
  return pairs ? static_cast<double>(total / static_cast<long double>(pairs)) : 0.0;
}

std::uint32_t diameter(const Graph& g) {
  std::uint32_t best = 0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    auto dist = bfs_distances(g, u);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (dist[v] == kUnreachable) throw std::runtime_error("diameter: graph disconnected");
      best = std::max(best, dist[v]);
    }
  }
  return best;
}

std::vector<std::size_t> degree_histogram(const Graph& g) {
  std::vector<std::size_t> hist;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    std::size_t d = g.degree(u);
    if (d >= hist.size()) hist.resize(d + 1, 0);
    ++hist[d];
  }
  return hist;
}

}  // namespace flattree::graph
