#include "graph/metrics.hpp"

#include <stdexcept>

#include "exec/parallel_for.hpp"
#include "graph/bfs.hpp"
#include "graph/multi_bfs.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace flattree::graph {

namespace {

obs::Counter c_apl_runs("graph.apl.runs");
obs::Counter c_apl_sources("graph.apl.sources_visited");
obs::Counter c_apl_pairs("graph.apl.pairs");

/// Per-source partial of the APL accumulation; combined in source order so
/// the long-double sum is bit-identical at any thread count — and, because
/// identity partials add exactly 0.0L, bit-identical between the scalar
/// per-source fold and the batched per-eligible-source fold.
struct AplPartial {
  long double total = 0.0L;
  std::uint64_t pairs = 0;
  std::uint32_t max_dist = 0;

  AplPartial& operator+=(const AplPartial& o) {
    total += o.total;
    pairs += o.pairs;
    max_dist = std::max(max_dist, o.max_dist);
    return *this;
  }
};

/// Accumulates one source's contribution given its distance row. Shared by
/// the scalar and batched engines so the long-double accumulation order
/// within a source is identical by construction: same-node pairs first,
/// then targets v > u ascending.
template <typename DistRow>
AplPartial source_partial(const Graph& g, const std::vector<std::uint32_t>& weight,
                          const std::vector<char>* member, NodeId u, const DistRow& dist,
                          std::uint32_t offset, std::uint32_t same_node_dist) {
  AplPartial part;
  std::uint64_t wu = weight[u];
  if (wu >= 2) {
    std::uint64_t p = wu * (wu - 1) / 2;
    part.total += static_cast<long double>(p) * same_node_dist;
    part.pairs += p;
    part.max_dist = std::max(part.max_dist, same_node_dist);
  }
  for (NodeId v = u + 1; v < g.node_count(); ++v) {
    if (weight[v] == 0) continue;
    if (member != nullptr && !(*member)[v]) continue;
    if (dist[v] == kUnreachable)
      throw std::runtime_error("weighted_apl: weighted pair disconnected");
    std::uint64_t p = wu * weight[v];
    std::uint32_t d = dist[v] + offset;
    part.total += static_cast<long double>(p) * d;
    part.pairs += p;
    part.max_dist = std::max(part.max_dist, d);
  }
  return part;
}

AplResult finish_apl(const AplPartial& sum) {
  AplResult r;
  r.pairs = sum.pairs;
  r.max_dist = sum.max_dist;
  r.average =
      sum.pairs ? static_cast<double>(sum.total / static_cast<long double>(sum.pairs)) : 0.0;
  c_apl_runs.inc();
  c_apl_pairs.add(sum.pairs);
  return r;
}

/// Reference engine: one scalar BFS per weighted source, per-source
/// partials reduced in source order (grain 1).
AplResult accumulate_apl_scalar(const Graph& g, const std::vector<std::uint32_t>& weight,
                                const std::vector<char>* member, bool confine_paths,
                                std::uint32_t offset, std::uint32_t same_node_dist) {
  if (weight.size() != g.node_count())
    throw std::invalid_argument("weighted_apl: weight size mismatch");

  OBS_SPAN("graph.apl");
  const std::size_t n = g.node_count();
  AplPartial sum = exec::parallel_reduce(
      n, /*grain=*/1, AplPartial{},
      [&](std::size_t begin, std::size_t end, std::size_t) {
        AplPartial part;
        for (std::size_t s = begin; s < end; ++s) {
          NodeId u = static_cast<NodeId>(s);
          if (weight[u] == 0) continue;
          if (member != nullptr && !(*member)[u]) continue;
          c_apl_sources.inc();
          std::vector<std::uint32_t> dist =
              confine_paths && member != nullptr ? bfs_distances_filtered(g, u, *member)
                                                 : bfs_distances(g, u);
          part += source_partial(g, weight, member, u, dist, offset, same_node_dist);
        }
        return part;
      },
      [](AplPartial acc, AplPartial part) {
        acc += part;
        return acc;
      });
  return finish_apl(sum);
}

/// Production engine: eligible sources packed into 64-wide MultiSourceBfs
/// batches fanned out over the pool. Per-source partials land in a dense
/// array and are folded sequentially in ascending source order afterwards —
/// the same long-double association as the scalar grain-1 reduce (identity
/// partials of ineligible sources add exactly 0.0L there), so the result is
/// bitwise-identical to accumulate_apl_scalar at any thread count.
AplResult accumulate_apl_batched(const Graph& g, const std::vector<std::uint32_t>& weight,
                                 const std::vector<char>* member, bool confine_paths,
                                 std::uint32_t offset, std::uint32_t same_node_dist) {
  if (weight.size() != g.node_count())
    throw std::invalid_argument("weighted_apl: weight size mismatch");

  OBS_SPAN("graph.apl");
  const std::size_t n = g.node_count();
  std::vector<NodeId> sources;
  sources.reserve(n);
  for (NodeId u = 0; u < n; ++u) {
    if (weight[u] == 0) continue;
    if (member != nullptr && !(*member)[u]) continue;
    sources.push_back(u);
  }

  const std::vector<char>* mask = confine_paths && member != nullptr ? member : nullptr;
  std::vector<AplPartial> partials(sources.size());
  MultiBfsPool pool(g);
  exec::parallel_for_chunked(
      sources.size(), kBfsBatchWidth,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        MultiBfsLease engine(pool);
        engine->run(sources.data() + begin, end - begin, mask);
        for (std::size_t i = begin; i < end; ++i) {
          c_apl_sources.inc();
          partials[i] = source_partial(g, weight, member, sources[i],
                                       engine->distances(i - begin), offset,
                                       same_node_dist);
        }
      });

  AplPartial sum;
  for (const AplPartial& part : partials) sum += part;
  return finish_apl(sum);
}

/// Unweighted APL partials, batched, folded in source order. Unreachable
/// pairs are skipped and counted (the documented policy).
UnweightedAplResult accumulate_unweighted(const Graph& g) {
  struct Partial {
    long double total = 0.0L;
    std::uint64_t pairs = 0;
    std::uint64_t unreachable = 0;
  };
  const std::size_t n = g.node_count();
  std::vector<Partial> partials(n);
  MultiBfsPool pool(g);
  exec::parallel_for_chunked(n, kBfsBatchWidth,
                             [&](std::size_t begin, std::size_t end, std::size_t) {
                               MultiBfsLease engine(pool);
                               std::vector<NodeId> batch(end - begin);
                               for (std::size_t s = begin; s < end; ++s)
                                 batch[s - begin] = static_cast<NodeId>(s);
                               engine->run(batch.data(), batch.size());
                               for (std::size_t s = begin; s < end; ++s) {
                                 auto dist = engine->distances(s - begin);
                                 Partial part;
                                 for (NodeId v = static_cast<NodeId>(s) + 1; v < n; ++v) {
                                   if (dist[v] == kUnreachable) {
                                     ++part.unreachable;
                                     continue;
                                   }
                                   part.total += dist[v];
                                   ++part.pairs;
                                 }
                                 partials[s] = part;
                               }
                             });
  Partial sum;
  for (const Partial& part : partials) {
    sum.total += part.total;
    sum.pairs += part.pairs;
    sum.unreachable += part.unreachable;
  }
  UnweightedAplResult r;
  r.pairs = sum.pairs;
  r.unreachable_pairs = sum.unreachable;
  r.average = sum.pairs ? static_cast<double>(sum.total / static_cast<long double>(sum.pairs))
                        : 0.0;
  return r;
}

}  // namespace

AplResult weighted_apl(const Graph& g, const std::vector<std::uint32_t>& weight,
                       std::uint32_t offset, std::uint32_t same_node_dist) {
  return accumulate_apl_batched(g, weight, nullptr, false, offset, same_node_dist);
}

AplResult weighted_apl_scalar(const Graph& g, const std::vector<std::uint32_t>& weight,
                              std::uint32_t offset, std::uint32_t same_node_dist) {
  return accumulate_apl_scalar(g, weight, nullptr, false, offset, same_node_dist);
}

AplResult weighted_apl_subset(const Graph& g, const std::vector<std::uint32_t>& weight,
                              const std::vector<char>& member, bool confine_paths,
                              std::uint32_t offset, std::uint32_t same_node_dist) {
  if (member.size() != g.node_count())
    throw std::invalid_argument("weighted_apl_subset: member mask size mismatch");
  return accumulate_apl_batched(g, weight, &member, confine_paths, offset, same_node_dist);
}

AplResult weighted_apl_subset_scalar(const Graph& g,
                                     const std::vector<std::uint32_t>& weight,
                                     const std::vector<char>& member, bool confine_paths,
                                     std::uint32_t offset, std::uint32_t same_node_dist) {
  if (member.size() != g.node_count())
    throw std::invalid_argument("weighted_apl_subset: member mask size mismatch");
  return accumulate_apl_scalar(g, weight, &member, confine_paths, offset, same_node_dist);
}

UnweightedAplResult unweighted_apl_stats(const Graph& g) { return accumulate_unweighted(g); }

double unweighted_apl(const Graph& g) { return accumulate_unweighted(g).average; }

std::uint32_t diameter(const Graph& g) {
  const std::size_t n = g.node_count();
  std::vector<std::uint32_t> best_per_source(n, 0);
  MultiBfsPool pool(g);
  exec::parallel_for_chunked(n, kBfsBatchWidth,
                             [&](std::size_t begin, std::size_t end, std::size_t) {
                               MultiBfsLease engine(pool);
                               std::vector<NodeId> batch(end - begin);
                               for (std::size_t s = begin; s < end; ++s)
                                 batch[s - begin] = static_cast<NodeId>(s);
                               engine->run(batch.data(), batch.size());
                               for (std::size_t s = begin; s < end; ++s) {
                                 auto dist = engine->distances(s - begin);
                                 std::uint32_t best = 0;
                                 for (NodeId v = 0; v < n; ++v) {
                                   if (dist[v] == kUnreachable)
                                     throw std::runtime_error("diameter: graph disconnected");
                                   best = std::max(best, dist[v]);
                                 }
                                 best_per_source[s] = best;
                               }
                             });
  std::uint32_t best = 0;
  for (std::uint32_t b : best_per_source) best = std::max(best, b);
  return best;
}

std::vector<std::size_t> degree_histogram(const Graph& g) {
  std::vector<std::size_t> hist;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    std::size_t d = g.degree(u);
    if (d >= hist.size()) hist.resize(d + 1, 0);
    ++hist[d];
  }
  return hist;
}

}  // namespace flattree::graph
