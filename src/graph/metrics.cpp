#include "graph/metrics.hpp"

#include <stdexcept>

#include "exec/parallel_for.hpp"
#include "graph/bfs.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace flattree::graph {

namespace {

obs::Counter c_apl_runs("graph.apl.runs");
obs::Counter c_apl_sources("graph.apl.sources_visited");
obs::Counter c_apl_pairs("graph.apl.pairs");

/// Per-source partial of the APL accumulation; combined in source order so
/// the long-double sum is bit-identical at any thread count.
struct AplPartial {
  long double total = 0.0L;
  std::uint64_t pairs = 0;
  std::uint32_t max_dist = 0;

  AplPartial& operator+=(const AplPartial& o) {
    total += o.total;
    pairs += o.pairs;
    max_dist = std::max(max_dist, o.max_dist);
    return *this;
  }
};

AplResult accumulate_apl(const Graph& g, const std::vector<std::uint32_t>& weight,
                         const std::vector<char>* member, bool confine_paths,
                         std::uint32_t offset, std::uint32_t same_node_dist) {
  if (weight.size() != g.node_count())
    throw std::invalid_argument("weighted_apl: weight size mismatch");

  OBS_SPAN("graph.apl");
  const std::size_t n = g.node_count();
  // Unordered pairs: each source u contributes targets with a larger id,
  // plus its same-node pairs once. One BFS per weighted source, fanned out
  // over the pool; per-source partials reduce in source order.
  AplPartial sum = exec::parallel_reduce(
      n, /*grain=*/1, AplPartial{},
      [&](std::size_t begin, std::size_t end, std::size_t) {
        AplPartial part;
        for (std::size_t s = begin; s < end; ++s) {
          NodeId u = static_cast<NodeId>(s);
          if (weight[u] == 0) continue;
          if (member != nullptr && !(*member)[u]) continue;
          c_apl_sources.inc();
          // Same-node server pairs.
          std::uint64_t wu = weight[u];
          if (wu >= 2) {
            std::uint64_t p = wu * (wu - 1) / 2;
            part.total += static_cast<long double>(p) * same_node_dist;
            part.pairs += p;
            part.max_dist = std::max(part.max_dist, same_node_dist);
          }
          std::vector<std::uint32_t> dist =
              confine_paths && member != nullptr ? bfs_distances_filtered(g, u, *member)
                                                 : bfs_distances(g, u);
          for (NodeId v = u + 1; v < g.node_count(); ++v) {
            if (weight[v] == 0) continue;
            if (member != nullptr && !(*member)[v]) continue;
            if (dist[v] == kUnreachable)
              throw std::runtime_error("weighted_apl: weighted pair disconnected");
            std::uint64_t p = wu * weight[v];
            std::uint32_t d = dist[v] + offset;
            part.total += static_cast<long double>(p) * d;
            part.pairs += p;
            part.max_dist = std::max(part.max_dist, d);
          }
        }
        return part;
      },
      [](AplPartial acc, AplPartial part) {
        acc += part;
        return acc;
      });

  AplResult r;
  r.pairs = sum.pairs;
  r.max_dist = sum.max_dist;
  r.average =
      sum.pairs ? static_cast<double>(sum.total / static_cast<long double>(sum.pairs)) : 0.0;
  c_apl_runs.inc();
  c_apl_pairs.add(sum.pairs);
  return r;
}

}  // namespace

AplResult weighted_apl(const Graph& g, const std::vector<std::uint32_t>& weight,
                       std::uint32_t offset, std::uint32_t same_node_dist) {
  return accumulate_apl(g, weight, nullptr, false, offset, same_node_dist);
}

AplResult weighted_apl_subset(const Graph& g, const std::vector<std::uint32_t>& weight,
                              const std::vector<char>& member, bool confine_paths,
                              std::uint32_t offset, std::uint32_t same_node_dist) {
  if (member.size() != g.node_count())
    throw std::invalid_argument("weighted_apl_subset: member mask size mismatch");
  return accumulate_apl(g, weight, &member, confine_paths, offset, same_node_dist);
}

double unweighted_apl(const Graph& g) {
  struct Partial {
    long double total = 0.0L;
    std::uint64_t pairs = 0;
  };
  Partial sum = exec::parallel_reduce(
      g.node_count(), /*grain=*/1, Partial{},
      [&](std::size_t begin, std::size_t end, std::size_t) {
        Partial part;
        for (std::size_t s = begin; s < end; ++s) {
          NodeId u = static_cast<NodeId>(s);
          auto dist = bfs_distances(g, u);
          for (NodeId v = u + 1; v < g.node_count(); ++v) {
            if (dist[v] == kUnreachable) continue;
            part.total += dist[v];
            ++part.pairs;
          }
        }
        return part;
      },
      [](Partial acc, Partial part) {
        acc.total += part.total;
        acc.pairs += part.pairs;
        return acc;
      });
  return sum.pairs ? static_cast<double>(sum.total / static_cast<long double>(sum.pairs))
                   : 0.0;
}

std::uint32_t diameter(const Graph& g) {
  return exec::parallel_reduce(
      g.node_count(), /*grain=*/1, std::uint32_t{0},
      [&](std::size_t begin, std::size_t end, std::size_t) {
        std::uint32_t best = 0;
        for (std::size_t s = begin; s < end; ++s) {
          auto dist = bfs_distances(g, static_cast<NodeId>(s));
          for (NodeId v = 0; v < g.node_count(); ++v) {
            if (dist[v] == kUnreachable)
              throw std::runtime_error("diameter: graph disconnected");
            best = std::max(best, dist[v]);
          }
        }
        return best;
      },
      [](std::uint32_t acc, std::uint32_t part) { return std::max(acc, part); });
}

std::vector<std::size_t> degree_histogram(const Graph& g) {
  std::vector<std::size_t> hist;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    std::size_t d = g.degree(u);
    if (d >= hist.size()) hist.resize(d + 1, 0);
    ++hist[d];
  }
  return hist;
}

}  // namespace flattree::graph
