#pragma once
// Undirected multigraph with per-link capacities and a CSR adjacency view.
//
// Topologies (src/topo, src/core) build Graph instances; algorithms (BFS,
// Dijkstra, k-shortest-paths) and the flow solvers consume them. Links are
// undirected at construction; solvers that need directed capacities treat
// each link as a pair of opposing arcs with the full link capacity each
// (full-duplex), which is the standard model in DCN throughput studies.
//
// Edit journal (src/inc support): links can be removed, restored, and
// recapacitated *in place* — link ids are never renumbered, removed links
// stay as tombstoned slots in `links()`. The CSR adjacency is maintained
// incrementally: small remove/restore deltas patch the existing index in
// O(delta * degree) instead of the O(V + E) full rebuild. Graphs built by
// the topology layer never remove links; tombstones only ever appear on
// graphs owned by the incremental engine (src/inc), whose consumers all go
// through neighbors() (which skips dead links). Code that iterates
// `links()` directly must either know the graph has no tombstones (every
// materialized Topology) or check `link_live()` per slot.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

namespace flattree::graph {

/// Node identifier: dense 0-based index into a Graph's node range.
using NodeId = std::uint32_t;
/// Link identifier: dense 0-based index into a Graph's link slots. Stable
/// across remove_link/restore_link (slots are tombstoned, never reused).
using LinkId = std::uint32_t;

/// Sentinel NodeId ("no node"), used by BFS trees and path extraction.
inline constexpr NodeId kInvalidNode = ~NodeId{0};
/// Sentinel LinkId ("no link"), used for tree roots and missing parents.
inline constexpr LinkId kInvalidLink = ~LinkId{0};

/// One undirected link. Parallel links between the same node pair are
/// allowed (each keeps its own capacity); self-loops are rejected.
struct Link {
  NodeId a = kInvalidNode;       ///< first endpoint
  NodeId b = kInvalidNode;       ///< second endpoint
  double capacity = 1.0;         ///< positive, finite link capacity

  /// The endpoint opposite to `from` (precondition: from is an endpoint).
  NodeId other(NodeId from) const { return from == a ? b : a; }
};

/// Half-edge in the adjacency view: the neighbor plus the link it rides on.
struct Arc {
  NodeId to = kInvalidNode;      ///< neighbor node
  LinkId link = kInvalidLink;    ///< link carrying this half-edge
};

/// One recorded mutation of a Graph's link set (see Graph::journal()).
struct GraphEdit {
  /// What happened to the link slot.
  enum class Kind : std::uint8_t {
    Add,          ///< fresh slot appended by add_link
    Remove,       ///< live slot tombstoned by remove_link
    Restore,      ///< tombstoned slot revived by restore_link
    SetCapacity,  ///< capacity changed in place by set_capacity
  };
  Kind kind = Kind::Add;  ///< mutation type
  LinkId link = kInvalidLink;  ///< affected link slot
};

/// Undirected multigraph with lazily built, incrementally patched CSR
/// adjacency.
///
/// Thread-safety: the lazy CSR build/patch is internally synchronized
/// (double-checked lock), so any number of read-only algorithms (BFS,
/// Dijkstra, Yen) may run concurrently on a shared Graph. Mutation
/// (add_nodes/add_link/remove_link/restore_link/set_capacity) is NOT safe
/// against concurrent readers: callers must establish a happens-before
/// edge between the last mutation and the first concurrent read (e.g.
/// mutate, then launch the readers). Every mutator invalidates the CSR
/// guard with a release store, so readers that are properly sequenced
/// after it observe the patched index, never a stale one.
class Graph {
 public:
  Graph() = default;
  /// Constructs a graph with `node_count` nodes and no links.
  explicit Graph(std::size_t node_count);

  // Copies/moves transfer the structure but not the CSR cache (it is
  // rebuilt lazily); required because the cache guard members are neither
  // copyable nor movable.
  Graph(const Graph& other);
  Graph& operator=(const Graph& other);
  Graph(Graph&& other) noexcept;
  Graph& operator=(Graph&& other) noexcept;

  /// Appends `count` fresh nodes, returning the id of the first. O(1);
  /// invalidates the CSR (next access rebuilds in full).
  NodeId add_nodes(std::size_t count);

  /// Adds an undirected link; throws on self-loop, unknown endpoint, or
  /// non-positive capacity. O(1) amortized; invalidates the CSR (next
  /// access rebuilds in full — appends cannot be patched in place).
  LinkId add_link(NodeId a, NodeId b, double capacity = 1.0);

  /// Tombstones a live link: it vanishes from neighbors()/degree() but its
  /// slot (and id) survive, so restore_link can revive it and ids held by
  /// callers stay valid. Throws std::out_of_range on a bad id and
  /// std::logic_error if the link is already removed. O(1) plus a deferred
  /// CSR patch of O(degree) at the next adjacency access.
  void remove_link(LinkId id);

  /// Revives a link previously tombstoned by remove_link (same endpoints
  /// and capacity). Throws std::out_of_range on a bad id and
  /// std::logic_error if the link is live. Cost mirrors remove_link.
  void restore_link(LinkId id);

  /// Replaces a link's capacity in place (the link may be live or
  /// tombstoned). Throws std::out_of_range on a bad id and
  /// std::invalid_argument on a non-positive or non-finite capacity. The
  /// CSR stores no capacities, so this never triggers a rebuild — but it
  /// is still a mutation and must not race with readers.
  void set_capacity(LinkId id, double capacity);

  /// Number of nodes.
  std::size_t node_count() const { return node_count_; }
  /// Number of link *slots*, including tombstoned ones (stable id space).
  std::size_t link_count() const { return links_.size(); }
  /// Number of live (non-tombstoned) links.
  std::size_t live_link_count() const { return live_link_count_; }
  /// True when the slot holds a live link (false after remove_link).
  bool link_live(LinkId id) const { return live_.empty() || live_[id] != 0; }
  /// The link stored in slot `id` (valid for tombstoned slots too).
  const Link& link(LinkId id) const { return links_[id]; }
  /// All link slots in id order, tombstones included — check link_live()
  /// when the graph may have been edited (see the header comment).
  const std::vector<Link>& links() const { return links_; }

  /// Monotonic count of mutations applied so far (adds, removes, restores,
  /// capacity changes). Incremental consumers use it to detect drift
  /// between a Graph and state derived from it.
  std::uint64_t edit_epoch() const { return edit_epoch_; }

  /// The journal of every mutation since construction (or since the last
  /// clear_journal()), in application order. Copies/moves do not transfer
  /// the journal.
  const std::vector<GraphEdit>& journal() const { return journal_; }
  /// Drops the recorded journal (the graph itself is untouched).
  void clear_journal() { journal_.clear(); }

  /// Number of live link endpoints at `node` (counts parallel links).
  std::size_t degree(NodeId node) const;

  /// Arcs leaving `node` over live links only. Builds (or patches) the CSR
  /// index lazily on first use after a mutation. The lazy build is
  /// thread-safe, so read-only algorithms (BFS, Dijkstra, Yen) may run
  /// concurrently on a shared Graph; mutation is NOT safe against
  /// concurrent readers (see the class comment).
  std::span<const Arc> neighbors(NodeId node) const;

  /// Forces the CSR build/patch now (also done implicitly by neighbors()).
  void ensure_csr() const;

  /// True if a live link (possibly one of several) joins a and b.
  bool connected(NodeId a, NodeId b) const;

  /// Total capacity between a and b over all live parallel links.
  double capacity_between(NodeId a, NodeId b) const;

 private:
  void build_csr() const;
  bool patch_csr() const;
  void note_structural_edit(GraphEdit::Kind kind, LinkId id);
  void note_liveness_edit(GraphEdit::Kind kind, LinkId id);

  std::size_t node_count_ = 0;
  std::vector<Link> links_;
  // Liveness per link slot; empty means "all live" (the common, never-
  // edited case pays no memory or branch cost beyond an empty() check).
  std::vector<char> live_;
  std::size_t live_link_count_ = 0;
  std::uint64_t edit_epoch_ = 0;
  std::vector<GraphEdit> journal_;

  // Lazily built CSR adjacency. csr_valid_ is the double-checked guard:
  // readers acquire-load it; the builder publishes the vectors with a
  // release-store under csr_mutex_. Within each node's segment the live
  // arcs come first ([offset[v], offset[v] + live_deg[v])), tombstoned
  // arcs are parked behind them so remove/restore patch by swapping
  // inside the segment without moving other nodes' ranges.
  //
  // csr_pending_ holds liveness flips recorded after the last build; the
  // next ensure_csr() applies them as in-place patches when the delta is
  // small, or falls back to a full rebuild. csr_structurally_stale_ forces
  // the full rebuild (add_nodes/add_link change segment shapes).
  mutable std::mutex csr_mutex_;
  mutable std::atomic<bool> csr_valid_{false};
  mutable bool csr_built_ = false;
  mutable bool csr_structurally_stale_ = true;
  mutable std::vector<std::pair<LinkId, bool>> csr_pending_;  ///< (link, now_live)
  mutable std::vector<std::uint32_t> csr_offset_;
  mutable std::vector<std::uint32_t> csr_live_deg_;
  mutable std::vector<Arc> csr_arcs_;
};

}  // namespace flattree::graph
