#pragma once
// Undirected multigraph with per-link capacities and a CSR adjacency view.
//
// Topologies (src/topo, src/core) build Graph instances; algorithms (BFS,
// Dijkstra, k-shortest-paths) and the flow solvers consume them. Links are
// undirected at construction; solvers that need directed capacities treat
// each link as a pair of opposing arcs with the full link capacity each
// (full-duplex), which is the standard model in DCN throughput studies.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

namespace flattree::graph {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;

inline constexpr NodeId kInvalidNode = ~NodeId{0};
inline constexpr LinkId kInvalidLink = ~LinkId{0};

/// One undirected link. Parallel links between the same node pair are
/// allowed (each keeps its own capacity); self-loops are rejected.
struct Link {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  double capacity = 1.0;

  /// The endpoint opposite to `from` (precondition: from is an endpoint).
  NodeId other(NodeId from) const { return from == a ? b : a; }
};

/// Half-edge in the adjacency view: the neighbor plus the link it rides on.
struct Arc {
  NodeId to = kInvalidNode;
  LinkId link = kInvalidLink;
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t node_count);

  // Copies/moves transfer the structure but not the CSR cache (it is
  // rebuilt lazily); required because the cache guard members are neither
  // copyable nor movable.
  Graph(const Graph& other);
  Graph& operator=(const Graph& other);
  Graph(Graph&& other) noexcept;
  Graph& operator=(Graph&& other) noexcept;

  /// Appends `count` fresh nodes, returning the id of the first.
  NodeId add_nodes(std::size_t count);

  /// Adds an undirected link; throws on self-loop or unknown endpoint.
  LinkId add_link(NodeId a, NodeId b, double capacity = 1.0);

  std::size_t node_count() const { return node_count_; }
  std::size_t link_count() const { return links_.size(); }
  const Link& link(LinkId id) const { return links_[id]; }
  const std::vector<Link>& links() const { return links_; }

  /// Number of link endpoints at `node` (counts parallel links).
  std::size_t degree(NodeId node) const;

  /// Arcs leaving `node`. Builds the CSR index lazily on first use;
  /// adding links afterwards invalidates and rebuilds it. The lazy build
  /// is thread-safe, so read-only algorithms (BFS, Dijkstra, Yen) may run
  /// concurrently on a shared Graph; mutation (add_nodes/add_link) is NOT
  /// safe against concurrent readers.
  std::span<const Arc> neighbors(NodeId node) const;

  /// Forces the CSR build now (also done implicitly by neighbors()).
  void ensure_csr() const;

  /// True if a link (possibly one of several) joins a and b.
  bool connected(NodeId a, NodeId b) const;

  /// Total capacity between a and b over all parallel links.
  double capacity_between(NodeId a, NodeId b) const;

 private:
  void build_csr() const;

  std::size_t node_count_ = 0;
  std::vector<Link> links_;

  // Lazily built CSR adjacency. csr_valid_ is the double-checked guard:
  // readers acquire-load it; the builder publishes the vectors with a
  // release-store under csr_mutex_.
  mutable std::mutex csr_mutex_;
  mutable std::atomic<bool> csr_valid_{false};
  mutable std::vector<std::uint32_t> csr_offset_;
  mutable std::vector<Arc> csr_arcs_;
};

}  // namespace flattree::graph
