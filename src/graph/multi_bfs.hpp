#pragma once
// Bit-parallel batched multi-source BFS: 64 sources per machine word.
//
// One scalar BFS per source touches every node and edge once *per source*;
// at mega scale (k=48/64 fat-trees, 100k+ servers) the per-source sweeps
// behind APL/APSP/diameter dominate everything else. This engine runs up
// to 64 sources in lock-step instead (Then et al., "The More the Merrier:
// Efficient Multi-Source Graph Traversal", VLDB 2015): each node carries
// one 64-bit word per role — `visited` (bit i: source i reached the node)
// and `frontier` (bit i: source i reached it at the current level) — and
// frontier expansion is a word-wide `frontier[u] & ~visited[v]` per arc,
// so one pass over the CSR advances all 64 traversals at once. Unit-weight
// distances are exact: every (source, node) pair settles at the first
// level its bit appears, identical to the scalar BFS result bit for bit.
//
// Allocation discipline: an engine owns its scratch (three word arrays,
// one row-major distance block) and reuses it across run() calls — the
// hot loop allocates nothing. Parallel callers lease engines from a
// MultiBfsPool (one engine per concurrently running batch, recycled via a
// free list) instead of constructing per batch.
//
// Determinism contract: a batch's result and its operation counters are a
// pure function of (graph, source list, mask) — the expansion scans nodes
// in ascending id and arcs in CSR order, single-threaded per batch. The
// global MultiBfsStats totals are order-independent sums over batches, so
// they are identical at any thread count; benches record them as proof of
// work (wall-clock on a 1-core container is untrustworthy).
//
// Sampled certification: set_distance_audit_hook installs a process-wide
// callback invoked with the first source row of every batch. Benches use
// it under --selfcheck to run check::certify_distances on sampled batched
// rows without ft_graph depending on ft_check.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace flattree::graph {

/// Sources per batch: one bit per source in a 64-bit frontier word.
inline constexpr std::size_t kBfsBatchWidth = 64;

/// Deterministic operation totals accumulated across every MultiSourceBfs
/// batch since the last reset (process-wide, thread-safe sums).
struct MultiBfsStats {
  std::uint64_t batches = 0;         ///< run() calls completed
  std::uint64_t sources = 0;         ///< sources traversed (<= 64 per batch)
  std::uint64_t levels = 0;          ///< BFS levels expanded, summed over batches
  std::uint64_t node_expansions = 0; ///< nodes expanded with a nonzero frontier word
  std::uint64_t words_touched = 0;   ///< 64-bit frontier/visited words read or written
  std::uint64_t nodes_settled = 0;   ///< (source, node) pairs assigned a distance
};

/// Snapshot of the process-wide batched-BFS counters.
MultiBfsStats multi_bfs_stats();

/// Zeroes the process-wide batched-BFS counters (bench sweeps bracket a
/// kernel with reset + snapshot to attribute work).
void reset_multi_bfs_stats();

/// Callback receiving (graph, source, distance row) for the first source
/// of each completed batch; see set_distance_audit_hook.
using DistanceAuditHook =
    std::function<void(const Graph&, NodeId, const std::vector<std::uint32_t>&)>;

/// Installs (or, with nullptr, clears) the process-wide sampled-row audit
/// hook. Install before parallel work starts (the setter is not
/// synchronized against concurrent run() calls); the hook itself must be
/// thread-safe — it fires from whichever worker ran the batch.
void set_distance_audit_hook(DistanceAuditHook hook);

/// Batched BFS engine over one graph. Not thread-safe: one engine serves
/// one batch at a time (lease per worker via MultiBfsPool for parallel
/// fan-out). Scratch is sized on first run() and reused afterwards.
class MultiSourceBfs {
 public:
  /// Binds the engine to `g` (the CSR is built eagerly so run() never
  /// takes the lazy-build lock). The graph must outlive the engine and
  /// must not be mutated while the engine is in use.
  explicit MultiSourceBfs(const Graph& g);

  /// Traverses from sources[0 .. count), count in [1, kBfsBatchWidth].
  /// With `allowed` non-null the traversal is confined to nodes with
  /// allowed[v] != 0 (the bfs_distances_filtered semantics; every source
  /// must be allowed). Throws std::invalid_argument on a bad count, an
  /// out-of-range or disallowed source, or a mask size mismatch.
  void run(const NodeId* sources, std::size_t count,
           const std::vector<char>* allowed = nullptr);

  /// Number of sources in the last run() batch.
  std::size_t batch_size() const { return count_; }

  /// Distance row of the i-th source of the last batch: exactly what
  /// bfs_distances (or bfs_distances_filtered) returns for that source,
  /// kUnreachable marking unreached nodes. Valid until the next run().
  std::span<const std::uint32_t> distances(std::size_t i) const;

  /// Nodes reached by the i-th source of the last batch (incl. itself).
  std::size_t reached(std::size_t i) const { return reached_[i]; }

 private:
  const Graph* g_;
  std::size_t node_count_;
  std::vector<std::uint64_t> visited_;
  std::vector<std::uint64_t> frontier_;
  std::vector<std::uint64_t> next_;
  std::vector<std::uint32_t> dist_;  ///< row-major: dist_[i * node_count_ + v]
  std::size_t count_ = 0;
  std::size_t reached_[kBfsBatchWidth] = {};
};

/// Thread-safe free list of MultiSourceBfs engines over one graph: at most
/// one engine is ever live per concurrently running batch, and engines are
/// recycled so repeated batches do no scratch allocation.
class MultiBfsPool {
 public:
  /// Builds the CSR once up front so leased engines never contend on it.
  explicit MultiBfsPool(const Graph& g) : g_(&g) { g.ensure_csr(); }

  /// Takes an engine from the free list (or constructs the pool's next
  /// one). Pair with release(); prefer the MultiBfsLease RAII wrapper.
  std::unique_ptr<MultiSourceBfs> acquire();

  /// Returns a leased engine to the free list.
  void release(std::unique_ptr<MultiSourceBfs> engine);

 private:
  const Graph* g_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<MultiSourceBfs>> free_;
};

/// RAII lease of a pool engine for one batch (or a sequence of batches on
/// the same worker).
class MultiBfsLease {
 public:
  explicit MultiBfsLease(MultiBfsPool& pool) : pool_(&pool), engine_(pool.acquire()) {}
  ~MultiBfsLease() { pool_->release(std::move(engine_)); }
  MultiBfsLease(const MultiBfsLease&) = delete;
  MultiBfsLease& operator=(const MultiBfsLease&) = delete;

  /// The leased engine.
  MultiSourceBfs& operator*() { return *engine_; }
  /// The leased engine.
  MultiSourceBfs* operator->() { return engine_.get(); }

 private:
  MultiBfsPool* pool_;
  std::unique_ptr<MultiSourceBfs> engine_;
};

}  // namespace flattree::graph
