#pragma once
// Unweighted shortest paths (BFS) and reachability.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace flattree::graph {

/// Hop distance marker for unreachable nodes.
inline constexpr std::uint32_t kUnreachable = ~std::uint32_t{0};

/// Single-source hop distances. O(V + E).
std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source);

/// Single-source distances restricted to nodes for which `allowed[v]` is
/// true (the source must be allowed). Used for intra-pod path lengths.
std::vector<std::uint32_t> bfs_distances_filtered(const Graph& g, NodeId source,
                                                  const std::vector<char>& allowed);

/// All-pairs hop distances via the bit-parallel batched engine
/// (graph::MultiSourceBfs): sources run 64 per word, batches fanned out
/// over the exec pool. Row u equals bfs_distances(g, u) bit for bit; the
/// result is identical at any thread count. O(V^2) memory.
std::vector<std::vector<std::uint32_t>> apsp_distances(const Graph& g);

/// Deterministic count of nodes settled by the scalar kernels
/// (bfs_distances / bfs_distances_filtered) since the last reset: one per
/// (call, reached node). Always on (one relaxed atomic add per call);
/// bench_micro brackets the scalar baseline with reset + read to compare
/// against MultiBfsStats::nodes_settled.
std::uint64_t scalar_bfs_settled();

/// Zeroes the scalar_bfs_settled() counter.
void reset_scalar_bfs_settled();

/// BFS tree: parent arc per node (kInvalidLink at source/unreached).
struct BfsTree {
  std::vector<std::uint32_t> dist;
  std::vector<NodeId> parent;
  std::vector<LinkId> parent_link;
};

/// Single-source BFS returning the full tree (distances + parents); use
/// bfs_distances when only the distance array is needed.
BfsTree bfs_tree(const Graph& g, NodeId source);

/// Reconstructs a node path source..target from a BFS tree; empty when
/// target is unreachable.
std::vector<NodeId> extract_path(const BfsTree& tree, NodeId target);

/// True when every node is reachable from node 0 (or the graph is empty).
bool is_connected(const Graph& g);

/// Number of connected components.
std::size_t component_count(const Graph& g);

}  // namespace flattree::graph
