#include "inc/mcf_warm.hpp"

#include <bit>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "check/certify.hpp"
#include "obs/metrics.hpp"

namespace flattree::inc {

namespace {

obs::Counter c_cold("inc.mcf.cold_solves");
obs::Counter c_dual("inc.mcf.dual_seeds");
obs::Counter c_exact("inc.mcf.exact_resumes");

bool same_links(const std::vector<graph::Link>& a, const std::vector<graph::Link>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].a != b[i].a || a[i].b != b[i].b) return false;
    if (std::bit_cast<std::uint64_t>(a[i].capacity) !=
        std::bit_cast<std::uint64_t>(b[i].capacity))
      return false;
  }
  return true;
}

bool same_commodities(const std::vector<mcf::Commodity>& a,
                      const std::vector<mcf::Commodity>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].src != b[i].src || a[i].dst != b[i].dst) return false;
    if (std::bit_cast<std::uint64_t>(a[i].demand) !=
        std::bit_cast<std::uint64_t>(b[i].demand))
      return false;
  }
  return true;
}

/// Multiset key: normalized endpoints + exact capacity bits (the same
/// matching rule as inc::diff_graphs).
struct LinkKey {
  std::uint64_t endpoints;
  std::uint64_t cap_bits;
  bool operator==(const LinkKey&) const = default;
};

struct LinkKeyHash {
  std::size_t operator()(const LinkKey& k) const {
    std::uint64_t h = k.endpoints * 0x9e3779b97f4a7c15ull;
    h ^= k.cap_bits + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

LinkKey key_of(const graph::Link& l) {
  graph::NodeId lo = l.a < l.b ? l.a : l.b;
  graph::NodeId hi = l.a < l.b ? l.b : l.a;
  return LinkKey{(static_cast<std::uint64_t>(lo) << 32) | hi,
                 std::bit_cast<std::uint64_t>(l.capacity)};
}

}  // namespace

void McfWarmCache::reset() {
  has_state_ = false;
  state_ = {};
  prev_ = {};
  last_tier_ = WarmTier::Cold;
}

mcf::McfResult McfWarmCache::solve(const graph::Graph& g,
                                   const std::vector<mcf::Commodity>& commodities,
                                   const mcf::McfOptions& options) {
  if (options.warm_start != nullptr || options.export_state != nullptr)
    throw std::invalid_argument("McfWarmCache::solve: warm fields are cache-owned");

  mcf::McfOptions opt = options;
  mcf::McfWarmState seed;
  last_tier_ = WarmTier::Cold;

  if (has_state_ && state_.converged && g.node_count() == prev_.nodes &&
      std::bit_cast<std::uint64_t>(opt.epsilon) ==
          std::bit_cast<std::uint64_t>(prev_.epsilon) &&
      opt.max_phases == prev_.max_phases &&
      opt.max_augmentations == prev_.max_augmentations &&
      opt.allow_unreachable == prev_.allow_unreachable) {
    if (same_links(g.links(), prev_.links) &&
        same_commodities(commodities, prev_.commodities)) {
      // Identical instance: full exact resume.
      seed = state_;
      seed.exact = true;
      last_tier_ = WarmTier::ExactResume;
    } else if (!opt_.exact_only) {
      // Overlapping instance: carry the duals of every link that survived,
      // matched by key multiset. Orientation may flip between builds, so
      // the forward/backward arc lengths follow the endpoints.
      seed.length.assign(g.link_count() * 2, 0.0);
      std::unordered_map<LinkKey, std::vector<graph::LinkId>, LinkKeyHash> prev_slots;
      for (graph::LinkId id = 0; id < prev_.links.size(); ++id)
        prev_slots[key_of(prev_.links[id])].push_back(id);
      std::unordered_map<LinkKey, std::size_t, LinkKeyHash> used;
      const auto& links = g.links();
      for (graph::LinkId id = 0; id < links.size(); ++id) {
        auto it = prev_slots.find(key_of(links[id]));
        if (it == prev_slots.end()) continue;
        std::size_t& cursor = used[it->first];
        if (cursor >= it->second.size()) continue;
        graph::LinkId pid = it->second[cursor++];
        bool flipped = links[id].a != prev_.links[pid].a;
        seed.length[2 * id] = state_.length[2 * pid + (flipped ? 1 : 0)];
        seed.length[2 * id + 1] = state_.length[2 * pid + (flipped ? 0 : 1)];
      }
      seed.d_sum = state_.d_sum;
      seed.exact = false;
      last_tier_ = WarmTier::DualSeed;
    }
    if (last_tier_ != WarmTier::Cold) opt.warm_start = &seed;
  }

  mcf::McfWarmState exported;
  opt.export_state = &exported;
  mcf::McfResult result = mcf::max_concurrent_flow(g, commodities, opt);

  switch (last_tier_) {
    case WarmTier::Cold:
      c_cold.inc();
      break;
    case WarmTier::DualSeed:
      c_dual.inc();
      break;
    case WarmTier::ExactResume:
      c_exact.inc();
      break;
  }

  // Re-certify every warm-started result: feasibility, conservation,
  // support, bracket, FPTAS gap (check::certify). A violation here means
  // the warm logic broke the solver's own evidence — fail loudly.
  if (last_tier_ != WarmTier::Cold) {
    check::CertifyOptions copt;
    copt.epsilon = opt.epsilon;
    check::Report report = check::certify(g, commodities, result, copt);
    if (!report.ok())
      throw std::runtime_error("McfWarmCache: warm-started result failed certification\n" +
                               report.to_string());
  }

  prev_.nodes = g.node_count();
  prev_.links = g.links();
  prev_.commodities = commodities;
  prev_.epsilon = opt.epsilon;
  prev_.max_phases = opt.max_phases;
  prev_.max_augmentations = opt.max_augmentations;
  prev_.allow_unreachable = opt.allow_unreachable;
  state_ = std::move(exported);
  has_state_ = true;
  return result;
}

}  // namespace flattree::inc
