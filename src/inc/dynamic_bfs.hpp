#pragma once
// Dynamic all-pairs BFS: cached single-source distance trees repaired
// in place as the underlying graph changes (Ramalingam/Reps-style).
//
// A sweep (failure levels, (m,n) profiles, conversion steps) visits a
// sequence of topologies that differ by a handful of links. Cold mode runs
// one BFS per weighted source per point; this engine keeps the per-source
// distance + parent-link arrays from the previous point and, per delta:
//
//   1. finds *orphans* — nodes whose tree parent link was removed — and
//      marks their whole subtrees (every node whose tree path crosses a
//      removed link) as the affected set;
//   2. if nothing is affected and no links were added, the source is
//      untouched (zero work beyond the orphan scan);
//   3. otherwise repairs affected nodes with a unit-weight Dijkstra seeded
//      from the unaffected frontier (bucket queue, exact), then relaxes
//      added links to a fixpoint — per-source work proportional to the
//      affected region, not the graph;
//   4. past a churn threshold (affected fraction > churn_threshold) the
//      repair would cost as much as a fresh traversal, so it falls back to
//      a full BFS — counted as cold work, never hidden.
//
// Exactness, not approximation: repaired arrays are bitwise equal to a
// cold BFS on the new graph (tests/inc asserts this over randomized delta
// sequences; check::certify_distances proves any single array sound and
// complete). Invalidation rules are documented in docs/incremental.md and
// DESIGN.md §8.
//
// Accounting: full/fallback/cold traversals bump the same graph.bfs.*
// counters a cold run bumps (so a --metrics-json diff between modes is
// apples-to-apples); repairs bump inc.apl.* instead (affected sources,
// repair visits, avoided visits, cache hits).
//
// Thread-safety: retarget() parallelizes the per-source repairs
// internally (sources are independent). The object itself follows the
// same rule as graph::Graph — concurrent *reads* (cached_distances) are
// safe, mutation (retarget / distances on a missing source) is not safe
// against concurrent access. inc::weighted_apl computes all needed
// sources up front, then reads them from a parallel region.

#include <cstdint>
#include <memory>
#include <vector>

#include "check/report.hpp"
#include "graph/graph.hpp"
#include "inc/delta.hpp"

namespace flattree::inc {

/// Tuning knobs for DynamicApsp.
struct DynamicApspOptions {
  /// Fall back to a full per-source BFS when more than this fraction of
  /// nodes is affected by a delta. 0 forces full recompute always (useful
  /// as a baseline); 1 never falls back.
  double churn_threshold = 0.25;
};

/// What one retarget() did, per source category (see header comment).
struct RetargetStats {
  std::size_t edits = 0;              ///< delta size (removed + restored + added)
  std::size_t sources_untouched = 0;  ///< cached trees with no affected node
  std::size_t sources_repaired = 0;   ///< trees patched incrementally
  std::size_t sources_rebuilt = 0;    ///< churn fallback: full BFS re-run
  std::size_t repair_visits = 0;      ///< nodes finalized/improved during repairs
};

/// Incrementally maintained single-source BFS trees over a working graph.
class DynamicApsp {
 public:
  /// Seeds the engine with a copy of `base`. No distances are computed
  /// yet — sources materialize lazily on first use.
  explicit DynamicApsp(const graph::Graph& base, DynamicApspOptions options = {});

  /// The engine's working graph (node ids match the seed graph; link slot
  /// ids are engine-private and may include tombstones).
  const graph::Graph& graph() const { return g_; }

  /// Edits the working graph so its live links match `target`'s
  /// (diff_graphs + apply_delta) and repairs every cached source. Node
  /// counts must match (std::invalid_argument otherwise).
  RetargetStats retarget(const graph::Graph& target);

  /// Distance array from `source` on the current graph, computing it cold
  /// on first use (graph::kUnreachable marks unreached nodes). The
  /// reference stays valid until the next retarget()/invalidate().
  const std::vector<std::uint32_t>& distances(graph::NodeId source);

  /// Cold-computes every not-yet-cached source in `sources` through the
  /// bit-parallel batched engine (graph::MultiSourceBfs, 64 sources per
  /// word, batches fanned out over the exec pool) — the bulk path behind
  /// inc::weighted_apl's materialization, replacing one scalar BFS per
  /// source. Distances are bitwise-identical to cold_compute's; parent
  /// links are rederived from the distance rows (first CSR arc one level
  /// closer), a valid shortest-path tree for later repairs. Mutates the
  /// engine: not safe against concurrent readers. Billing matches the lazy
  /// path: graph.bfs.* + inc.apl.sources_cold per computed source,
  /// inc.apl.cache_hits per already-cached source.
  void materialize(const std::vector<graph::NodeId>& sources);

  /// True when `source`'s tree is materialized.
  bool cached(graph::NodeId source) const {
    return source < src_.size() && src_[source] != nullptr;
  }

  /// Read-only access to a cached array (std::logic_error if missing).
  /// Safe to call from parallel workers while no mutation is running.
  const std::vector<std::uint32_t>& cached_distances(graph::NodeId source) const;

  /// Drops every cached tree (next distances() recomputes cold).
  void invalidate();

  /// Certifies one cached source against the current graph via
  /// check::certify_distances (std::logic_error if not cached).
  check::Report verify(graph::NodeId source) const;

  /// Certifies every cached source; merged report.
  check::Report verify_all_cached() const;

  /// Test hook (negative controls): overwrites one cached distance so the
  /// equivalence suite can prove check::certify_distances catches cache
  /// corruption. Not for production use.
  void corrupt_cache_for_test(graph::NodeId source, graph::NodeId victim,
                              std::uint32_t value);

 private:
  struct SourceState {
    std::vector<std::uint32_t> dist;
    std::vector<graph::LinkId> parent_link;  ///< kInvalidLink at the source
  };

  void cold_compute(graph::NodeId source);
  /// Repairs one source in place; returns work done (counted into stats).
  void repair_source(graph::NodeId source, const std::vector<char>& removed_live,
                     const std::vector<graph::LinkId>& new_links, RetargetStats& stats);
  void full_bfs(SourceState& st, graph::NodeId source);

  graph::Graph g_;
  DynamicApspOptions opt_;
  std::vector<std::unique_ptr<SourceState>> src_;
};

}  // namespace flattree::inc
