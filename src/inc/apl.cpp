#include "inc/apl.hpp"

#include <algorithm>
#include <stdexcept>

#include "exec/parallel_for.hpp"
#include "graph/bfs.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace flattree::inc {

namespace {

// Same metric names as the cold path (graph/metrics.cpp, topo/apl.cpp) so
// manifests stay comparable across modes; the registry dedupes by name.
obs::Counter c_apl_runs("graph.apl.runs");
obs::Counter c_apl_sources("graph.apl.sources_visited");
obs::Counter c_apl_pairs("graph.apl.pairs");
obs::Counter c_topo_apl_runs("topo.apl.runs");

/// Same shape as graph/metrics.cpp's AplPartial: the combine order and
/// member arithmetic must match exactly for bitwise-equal averages.
struct AplPartial {
  long double total = 0.0L;
  std::uint64_t pairs = 0;
  std::uint32_t max_dist = 0;

  AplPartial& operator+=(const AplPartial& o) {
    total += o.total;
    pairs += o.pairs;
    max_dist = std::max(max_dist, o.max_dist);
    return *this;
  }
};

}  // namespace

graph::AplResult weighted_apl(DynamicApsp& engine,
                              const std::vector<std::uint32_t>& weight,
                              std::uint32_t offset, std::uint32_t same_node_dist) {
  const graph::Graph& g = engine.graph();
  if (weight.size() != g.node_count())
    throw std::invalid_argument("weighted_apl: weight size mismatch");

  OBS_SPAN("graph.apl");
  const std::size_t n = g.node_count();
  // Materialize every weighted source before the read-only parallel region
  // below; the bulk fill runs 64-wide batched BFS internally.
  std::vector<graph::NodeId> needed;
  needed.reserve(n);
  for (std::size_t s = 0; s < n; ++s)
    if (weight[s] != 0) needed.push_back(static_cast<graph::NodeId>(s));
  engine.materialize(needed);

  const DynamicApsp& ro = engine;
  AplPartial sum = exec::parallel_reduce(
      n, /*grain=*/1, AplPartial{},
      [&](std::size_t begin, std::size_t end, std::size_t) {
        AplPartial part;
        for (std::size_t s = begin; s < end; ++s) {
          graph::NodeId u = static_cast<graph::NodeId>(s);
          if (weight[u] == 0) continue;
          c_apl_sources.inc();
          std::uint64_t wu = weight[u];
          if (wu >= 2) {
            std::uint64_t p = wu * (wu - 1) / 2;
            part.total += static_cast<long double>(p) * same_node_dist;
            part.pairs += p;
            part.max_dist = std::max(part.max_dist, same_node_dist);
          }
          const std::vector<std::uint32_t>& dist = ro.cached_distances(u);
          for (graph::NodeId v = u + 1; v < g.node_count(); ++v) {
            if (weight[v] == 0) continue;
            if (dist[v] == graph::kUnreachable)
              throw std::runtime_error("weighted_apl: weighted pair disconnected");
            std::uint64_t p = wu * weight[v];
            std::uint32_t d = dist[v] + offset;
            part.total += static_cast<long double>(p) * d;
            part.pairs += p;
            part.max_dist = std::max(part.max_dist, d);
          }
        }
        return part;
      },
      [](AplPartial acc, AplPartial part) {
        acc += part;
        return acc;
      });

  graph::AplResult r;
  r.pairs = sum.pairs;
  r.max_dist = sum.max_dist;
  r.average =
      sum.pairs ? static_cast<double>(sum.total / static_cast<long double>(sum.pairs)) : 0.0;
  c_apl_runs.inc();
  c_apl_pairs.add(sum.pairs);
  return r;
}

graph::AplResult server_apl(DynamicApsp& engine, const topo::Topology& topo) {
  OBS_SPAN("topo.apl.server_apl");
  c_topo_apl_runs.inc();
  return weighted_apl(engine, topo.servers_per_switch(), /*offset=*/2,
                      /*same_node_dist=*/2);
}

graph::AplResult server_apl_subset(DynamicApsp& engine, const topo::Topology& topo,
                                   const std::vector<topo::ServerId>& subset) {
  std::vector<std::uint32_t> weight(topo.switch_count(), 0);
  for (topo::ServerId s : subset) ++weight[topo.host(s)];
  return weighted_apl(engine, weight, /*offset=*/2, /*same_node_dist=*/2);
}

}  // namespace flattree::inc
