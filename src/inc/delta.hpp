#pragma once
// Live-link-set diffs between two graphs over the same node space.
//
// The incremental engine (inc::DynamicApsp) owns a mutable working Graph
// and moves it from sweep point to sweep point by *editing* instead of
// rebuilding: diff_graphs compares the engine graph's live links against a
// freshly built target topology and emits the minimal edit script —
// tombstone these slots, revive those, append the rest. Removed slots are
// kept as tombstones so a later sweep point that brings the same link back
// (failure sweeps always do) becomes a cheap restore_link that the CSR can
// patch in place, not an append that forces a full rebuild.
//
// Links are matched by (min endpoint, max endpoint, exact capacity bits);
// parallel links match by multiplicity. Link ids on the two sides are
// unrelated — the delta speaks engine-slot ids on the remove/restore side
// and endpoint/capacity triples on the add side.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace flattree::inc {

/// Edit script turning one graph's live-link multiset into another's.
/// Apply order is remove, restore, add (apply_delta does this).
struct GraphDelta {
  std::vector<graph::LinkId> remove;   ///< live engine slots to tombstone
  std::vector<graph::LinkId> restore;  ///< tombstoned engine slots to revive
  std::vector<graph::Link> add;        ///< links with no reusable slot

  bool empty() const { return remove.empty() && restore.empty() && add.empty(); }
  /// Total number of edits.
  std::size_t size() const { return remove.size() + restore.size() + add.size(); }
};

/// Computes the delta that makes `engine`'s live links match `target`'s.
/// Both graphs must have the same node count (std::invalid_argument
/// otherwise). O(links) time and space; deterministic: slots are matched
/// and emitted in ascending id order.
GraphDelta diff_graphs(const graph::Graph& engine, const graph::Graph& target);

/// Applies a delta produced by diff_graphs against the same engine graph.
/// Returns the slot ids that became live (restored slots first, then the
/// freshly appended ones, in delta order).
std::vector<graph::LinkId> apply_delta(graph::Graph& g, const GraphDelta& delta);

}  // namespace flattree::inc
