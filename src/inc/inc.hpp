#pragma once
// Umbrella header for the incremental-analytics engine.
//
// src/inc makes sweeps delta-aware instead of cold-start: consecutive
// sweep points (failure levels, (m,n) profiles, conversion steps) differ
// by a handful of links, so the engine edits a working graph in place
// (inc/delta.hpp), repairs cached BFS distance trees instead of re-running
// them (inc/dynamic_bfs.hpp), accumulates APL from the repaired caches
// with bitwise-identical arithmetic (inc/apl.hpp), and warm-starts
// Garg-Koenemann solves from the previous point's terminal state
// (inc/mcf_warm.hpp). Benches expose it behind --incremental (default
// off), with stdout byte-identical to cold mode; the win shows up in the
// inc.* / graph.bfs.* counters of a --metrics-json manifest.
//
// Invalidation rules and the exactness argument: docs/incremental.md and
// DESIGN.md §8. Equivalence tests: tests/inc (ctest -L inc).
//
// Entry points:
//   inc::DynamicApsp           — cached, repairable per-source BFS trees
//   inc::weighted_apl / server_apl / server_apl_subset
//   inc::McfWarmCache          — warm-started max_concurrent_flow
//   inc::diff_graphs / apply_delta

#include "inc/apl.hpp"
#include "inc/delta.hpp"
#include "inc/dynamic_bfs.hpp"
#include "inc/mcf_warm.hpp"
