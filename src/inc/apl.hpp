#pragma once
// Weighted APL over a DynamicApsp engine's cached distances.
//
// Mirrors graph::weighted_apl / topo::server_apl term for term: the same
// per-source partial sums in the same long-double accumulation structure,
// combined in the same source order — so at equal distances the result is
// *bitwise* equal to the cold computation at any thread count (floating-
// point addition is not associative; replicating the association order is
// what makes `--incremental` byte-identical, not just "close").
//
// Sources the engine has not materialized yet are computed cold
// (sequentially, before the parallel accumulation — the engine is not
// mutation-safe from workers); everything else reads the repaired caches.

#include <cstdint>
#include <vector>

#include "graph/metrics.hpp"
#include "inc/dynamic_bfs.hpp"
#include "topo/topology.hpp"

namespace flattree::inc {

/// graph::weighted_apl against the engine's current graph and caches.
/// Identical contract: throws std::runtime_error when a weighted pair is
/// disconnected, std::invalid_argument on a weight size mismatch.
graph::AplResult weighted_apl(DynamicApsp& engine,
                              const std::vector<std::uint32_t>& weight,
                              std::uint32_t offset, std::uint32_t same_node_dist);

/// topo::server_apl evaluated incrementally. The engine must already be
/// retargeted to `topo` (node counts checked; link drift is the caller's
/// contract — retarget() first).
graph::AplResult server_apl(DynamicApsp& engine, const topo::Topology& topo);

/// topo::server_apl_subset evaluated incrementally (same retarget
/// contract as server_apl).
graph::AplResult server_apl_subset(DynamicApsp& engine, const topo::Topology& topo,
                                   const std::vector<topo::ServerId>& subset);

}  // namespace flattree::inc
