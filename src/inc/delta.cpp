#include "inc/delta.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace flattree::inc {

namespace {

/// Canonical key for link matching: normalized endpoints + capacity bits.
/// Capacities are compared exactly (bit pattern) — the engine only ever
/// re-homes links it created from the same topology generator, so fuzzy
/// matching would hide real drift.
std::uint64_t link_key_lo(const graph::Link& l) {
  graph::NodeId a = l.a < l.b ? l.a : l.b;
  graph::NodeId b = l.a < l.b ? l.b : l.a;
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

struct KeyHash {
  std::size_t operator()(const std::pair<std::uint64_t, std::uint64_t>& k) const {
    std::uint64_t h = k.first * 0x9e3779b97f4a7c15ull;
    h ^= k.second + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

using SlotMap = std::unordered_map<std::pair<std::uint64_t, std::uint64_t>,
                                   std::vector<graph::LinkId>, KeyHash>;

std::pair<std::uint64_t, std::uint64_t> key_of(const graph::Link& l) {
  return {link_key_lo(l), std::bit_cast<std::uint64_t>(l.capacity)};
}

}  // namespace

GraphDelta diff_graphs(const graph::Graph& engine, const graph::Graph& target) {
  if (engine.node_count() != target.node_count())
    throw std::invalid_argument("diff_graphs: node counts differ");

  // Bucket the engine's slots by key, live and tombstoned separately.
  // Slots are pushed in ascending id order, consumed front-first, so the
  // emitted delta is deterministic.
  SlotMap live, dead;
  for (graph::LinkId id = 0; id < engine.link_count(); ++id)
    (engine.link_live(id) ? live : dead)[key_of(engine.link(id))].push_back(id);

  GraphDelta delta;
  std::unordered_map<std::pair<std::uint64_t, std::uint64_t>, std::size_t, KeyHash>
      live_used, dead_used;
  for (graph::LinkId tid = 0; tid < target.link_count(); ++tid) {
    if (!target.link_live(tid)) continue;
    auto key = key_of(target.link(tid));
    // Prefer an already-live engine slot (no edit at all) ...
    if (auto it = live.find(key); it != live.end()) {
      std::size_t& used = live_used[key];
      if (used < it->second.size()) {
        ++used;
        continue;
      }
    }
    // ... then a tombstoned slot with the same key (cheap restore) ...
    if (auto it = dead.find(key); it != dead.end()) {
      std::size_t& used = dead_used[key];
      if (used < it->second.size()) {
        delta.restore.push_back(it->second[used++]);
        continue;
      }
    }
    // ... and only append when nothing matches.
    delta.add.push_back(target.link(tid));
  }

  // Live engine slots the target did not consume must go.
  for (const auto& [key, slots] : live) {
    std::size_t used = 0;
    if (auto it = live_used.find(key); it != live_used.end()) used = it->second;
    for (std::size_t i = used; i < slots.size(); ++i) delta.remove.push_back(slots[i]);
  }
  std::sort(delta.remove.begin(), delta.remove.end());
  std::sort(delta.restore.begin(), delta.restore.end());
  return delta;
}

std::vector<graph::LinkId> apply_delta(graph::Graph& g, const GraphDelta& delta) {
  std::vector<graph::LinkId> now_live;
  now_live.reserve(delta.restore.size() + delta.add.size());
  for (graph::LinkId id : delta.remove) g.remove_link(id);
  for (graph::LinkId id : delta.restore) {
    g.restore_link(id);
    now_live.push_back(id);
  }
  for (const graph::Link& l : delta.add) now_live.push_back(g.add_link(l.a, l.b, l.capacity));
  return now_live;
}

}  // namespace flattree::inc
