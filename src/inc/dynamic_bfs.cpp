#include "inc/dynamic_bfs.hpp"

#include <algorithm>
#include <stdexcept>

#include "check/distances.hpp"
#include "exec/parallel_for.hpp"
#include "graph/bfs.hpp"
#include "graph/multi_bfs.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace flattree::inc {

namespace {

using graph::kInvalidLink;
using graph::kInvalidNode;
using graph::kUnreachable;
using graph::LinkId;
using graph::NodeId;

// Full/fallback/cold traversals bill the same graph.bfs.* metrics a cold
// run bills (the registry dedupes by name), so cross-mode manifest diffs
// compare like with like. Repairs bill inc.* only.
obs::Counter c_bfs_runs("graph.bfs.runs");
obs::Counter c_bfs_visited("graph.bfs.nodes_visited");
obs::Histogram h_bfs_visited("graph.bfs.visited_per_source",
                             obs::Histogram::exponential_bounds(16.0, 4.0, 10));

obs::Counter c_retargets("inc.retarget.runs");
obs::Counter c_edits("inc.retarget.edits");
obs::Counter c_untouched("inc.apl.sources_untouched");
obs::Counter c_repaired("inc.apl.sources_repaired");
obs::Counter c_rebuilt("inc.apl.sources_rebuilt");
obs::Counter c_cold("inc.apl.sources_cold");
obs::Counter c_cache_hits("inc.apl.cache_hits");
obs::Counter c_repair_visits("inc.apl.repair_visits");
obs::Counter c_avoided_visits("inc.apl.avoided_visits");

}  // namespace

DynamicApsp::DynamicApsp(const graph::Graph& base, DynamicApspOptions options)
    : g_(base), opt_(options) {
  g_.clear_journal();
  src_.resize(g_.node_count());
}

void DynamicApsp::full_bfs(SourceState& st, NodeId source) {
  const std::size_t n = g_.node_count();
  st.dist.assign(n, kUnreachable);
  st.parent_link.assign(n, kInvalidLink);
  std::vector<NodeId> queue;
  queue.reserve(n);
  st.dist[source] = 0;
  queue.push_back(source);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    NodeId u = queue[head];
    for (const graph::Arc& arc : g_.neighbors(u)) {
      if (st.dist[arc.to] == kUnreachable) {
        st.dist[arc.to] = st.dist[u] + 1;
        st.parent_link[arc.to] = arc.link;
        queue.push_back(arc.to);
      }
    }
  }
  if (obs::enabled()) {
    c_bfs_runs.inc();
    c_bfs_visited.add(queue.size());
    h_bfs_visited.observe(static_cast<double>(queue.size()));
  }
}

void DynamicApsp::cold_compute(NodeId source) {
  auto st = std::make_unique<SourceState>();
  full_bfs(*st, source);
  if (obs::enabled()) c_cold.inc();
  src_[source] = std::move(st);
}

const std::vector<std::uint32_t>& DynamicApsp::distances(NodeId source) {
  if (source >= g_.node_count())
    throw std::out_of_range("DynamicApsp::distances: source out of range");
  if (src_[source] == nullptr) {
    cold_compute(source);
  } else if (obs::enabled()) {
    c_cache_hits.inc();
  }
  return src_[source]->dist;
}

void DynamicApsp::materialize(const std::vector<NodeId>& sources) {
  const std::size_t n = g_.node_count();
  std::vector<NodeId> todo;
  todo.reserve(sources.size());
  std::vector<char> queued(n, 0);
  for (NodeId s : sources) {
    if (s >= n) throw std::out_of_range("DynamicApsp::materialize: source out of range");
    if (src_[s] != nullptr) {
      if (obs::enabled()) c_cache_hits.inc();
      continue;
    }
    if (!queued[s]) {
      queued[s] = 1;
      todo.push_back(s);
    }
  }
  if (todo.empty()) return;

  g_.ensure_csr();  // build once, before the parallel batches share it
  graph::MultiBfsPool pool(g_);
  exec::parallel_for_chunked(
      todo.size(), graph::kBfsBatchWidth,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        graph::MultiBfsLease engine(pool);
        engine->run(todo.data() + begin, end - begin);
        for (std::size_t i = begin; i < end; ++i) {
          auto row = engine->distances(i - begin);
          auto st = std::make_unique<SourceState>();
          st->dist.assign(row.begin(), row.end());
          // The batched engine yields distances only; rebuild a parent
          // tree from them — the first CSR arc one level closer is a
          // valid shortest-path parent (dist[parent] + 1 == dist[v]), so
          // the support invariant repairs and certification rely on
          // holds. kUnreachable + 1 wraps to 0 and can never equal a
          // positive dv, so unreached neighbours never match.
          st->parent_link.assign(n, kInvalidLink);
          for (NodeId v = 0; v < n; ++v) {
            const std::uint32_t dv = st->dist[v];
            if (dv == 0 || dv == kUnreachable) continue;
            for (const graph::Arc& arc : g_.neighbors(v)) {
              if (st->dist[arc.to] + 1 == dv) {
                st->parent_link[v] = arc.link;
                break;
              }
            }
          }
          if (obs::enabled()) c_cold.inc();
          src_[todo[i]] = std::move(st);
        }
      });
}

const std::vector<std::uint32_t>& DynamicApsp::cached_distances(NodeId source) const {
  if (!cached(source))
    throw std::logic_error("DynamicApsp::cached_distances: source not cached");
  return src_[source]->dist;
}

void DynamicApsp::invalidate() {
  for (auto& st : src_) st.reset();
}

void DynamicApsp::repair_source(NodeId source, const std::vector<char>& removed_live,
                                const std::vector<LinkId>& new_links,
                                RetargetStats& stats) {
  SourceState& st = *src_[source];
  const std::size_t n = g_.node_count();

  // -- phase 1: orphans and their subtrees (the affected set) --------------
  //
  // A node is affected iff its tree path to the source crosses a removed
  // link: its own parent link died (orphan) or its parent is affected.
  // Parents sit one BFS level up, so one pass over nodes bucketed by
  // distance settles the flags.
  std::uint32_t max_dist = 0;
  bool any_orphan = false;
  for (NodeId v = 0; v < n; ++v) {
    if (st.dist[v] == kUnreachable) continue;
    max_dist = std::max(max_dist, st.dist[v]);
    if (st.parent_link[v] != kInvalidLink && removed_live[st.parent_link[v]])
      any_orphan = true;
  }
  if (!any_orphan && new_links.empty()) {
    ++stats.sources_untouched;
    if (obs::enabled()) {
      c_untouched.inc();
      c_avoided_visits.add(n);
    }
    return;
  }

  std::vector<char> affected(n, 0);
  std::vector<NodeId> affected_nodes;
  if (any_orphan) {
    std::vector<std::vector<NodeId>> by_level(max_dist + 1);
    for (NodeId v = 0; v < n; ++v)
      if (st.dist[v] != kUnreachable && st.dist[v] > 0) by_level[st.dist[v]].push_back(v);
    for (std::uint32_t d = 1; d <= max_dist; ++d) {
      for (NodeId v : by_level[d]) {
        LinkId pl = st.parent_link[v];
        NodeId parent = g_.link(pl).other(v);
        if (removed_live[pl] || affected[parent]) {
          affected[v] = 1;
          affected_nodes.push_back(v);
        }
      }
    }
  }

  // -- churn fallback ------------------------------------------------------
  if (static_cast<double>(affected_nodes.size()) >
      opt_.churn_threshold * static_cast<double>(n)) {
    full_bfs(st, source);
    ++stats.sources_rebuilt;
    if (obs::enabled()) c_rebuilt.inc();
    return;
  }

  // -- phase 2: Dijkstra repair of the affected region ---------------------
  //
  // Affected distances are reset; candidates enter from the unaffected
  // frontier (dist[w] + 1 over any live link) and propagate inside the
  // region through a unit-weight bucket queue. Frontier values are exact
  // for the removal-only graph, so finalized values are exact too — except
  // where an added link shortened something, which phase 3 fixes.
  struct Cand {
    NodeId node;
    LinkId via;
  };
  std::size_t visits = 0;
  std::vector<NodeId> improved;  // nodes that ended up *closer* than before
  if (!affected_nodes.empty()) {
    std::vector<std::uint32_t> old_dist(affected_nodes.size());
    for (std::size_t i = 0; i < affected_nodes.size(); ++i) {
      old_dist[i] = st.dist[affected_nodes[i]];
      st.dist[affected_nodes[i]] = kUnreachable;
      st.parent_link[affected_nodes[i]] = kInvalidLink;
    }
    std::vector<std::vector<Cand>> buckets;
    auto push = [&buckets](std::uint32_t d, NodeId v, LinkId via) {
      if (buckets.size() <= d) buckets.resize(d + 1);
      buckets[d].push_back(Cand{v, via});
    };
    for (NodeId v : affected_nodes) {
      for (const graph::Arc& arc : g_.neighbors(v)) {
        if (affected[arc.to] || st.dist[arc.to] == kUnreachable) continue;
        push(st.dist[arc.to] + 1, v, arc.link);
      }
    }
    for (std::uint32_t d = 0; d < buckets.size(); ++d) {
      for (std::size_t i = 0; i < buckets[d].size(); ++i) {
        Cand c = buckets[d][i];
        if (st.dist[c.node] != kUnreachable) continue;  // already finalized
        st.dist[c.node] = d;
        st.parent_link[c.node] = c.via;
        ++visits;
        for (const graph::Arc& arc : g_.neighbors(c.node))
          if (affected[arc.to] && st.dist[arc.to] == kUnreachable)
            push(d + 1, arc.to, arc.link);
      }
    }
    // Affected nodes that came back *closer* than their old distance got
    // there through an added link; they seed phase 3's relaxation so the
    // shortcut propagates beyond the affected region.
    for (std::size_t i = 0; i < affected_nodes.size(); ++i) {
      NodeId v = affected_nodes[i];
      if (st.dist[v] != kUnreachable && st.dist[v] < old_dist[i]) improved.push_back(v);
    }
  }

  // -- phase 3: relax added links to a fixpoint ----------------------------
  //
  // Standard incremental-BFS insertion: seed with every endpoint improved
  // by an added link (plus phase 2's shortcut nodes) and propagate strict
  // improvements breadth-first. Monotone decreasing, hence terminating and
  // exact.
  std::vector<NodeId> queue = std::move(improved);
  for (LinkId id : new_links) {
    const graph::Link& l = g_.link(id);
    if (st.dist[l.a] != kUnreachable &&
        (st.dist[l.b] == kUnreachable || st.dist[l.b] > st.dist[l.a] + 1)) {
      st.dist[l.b] = st.dist[l.a] + 1;
      st.parent_link[l.b] = id;
      queue.push_back(l.b);
    }
    if (st.dist[l.b] != kUnreachable &&
        (st.dist[l.a] == kUnreachable || st.dist[l.a] > st.dist[l.b] + 1)) {
      st.dist[l.a] = st.dist[l.b] + 1;
      st.parent_link[l.a] = id;
      queue.push_back(l.a);
    }
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    NodeId u = queue[head];
    ++visits;
    for (const graph::Arc& arc : g_.neighbors(u)) {
      if (st.dist[arc.to] == kUnreachable || st.dist[arc.to] > st.dist[u] + 1) {
        st.dist[arc.to] = st.dist[u] + 1;
        st.parent_link[arc.to] = arc.link;
        queue.push_back(arc.to);
      }
    }
  }

  ++stats.sources_repaired;
  stats.repair_visits += visits;
  if (obs::enabled()) {
    c_repaired.inc();
    c_repair_visits.add(visits);
    c_avoided_visits.add(n > visits ? n - visits : 0);
  }
}

RetargetStats DynamicApsp::retarget(const graph::Graph& target) {
  OBS_SPAN("inc.retarget");
  GraphDelta delta = diff_graphs(g_, target);

  // Slot liveness before the edits, so repairs can test "was this parent
  // link removed" against the delta alone.
  std::vector<char> removed_live(g_.link_count() + delta.add.size(), 0);
  for (LinkId id : delta.remove) removed_live[id] = 1;

  std::vector<LinkId> new_links = apply_delta(g_, delta);
  g_.clear_journal();
  g_.ensure_csr();  // build once, before the parallel repairs share it

  RetargetStats stats;
  stats.edits = delta.size();
  if (obs::enabled()) {
    c_retargets.inc();
    c_edits.add(delta.size());
  }
  if (delta.empty()) {
    for (const auto& st : src_)
      if (st != nullptr) ++stats.sources_untouched;
    return stats;
  }

  // Per-source repairs are independent; fan out over the pool and combine
  // partial stats in source order (deterministic at any thread count).
  RetargetStats repaired = exec::parallel_reduce(
      g_.node_count(), /*grain=*/1, RetargetStats{},
      [&](std::size_t begin, std::size_t end, std::size_t) {
        RetargetStats part;
        for (std::size_t s = begin; s < end; ++s) {
          if (src_[s] == nullptr) continue;
          repair_source(static_cast<NodeId>(s), removed_live, new_links, part);
        }
        return part;
      },
      [](RetargetStats acc, RetargetStats part) {
        acc.sources_untouched += part.sources_untouched;
        acc.sources_repaired += part.sources_repaired;
        acc.sources_rebuilt += part.sources_rebuilt;
        acc.repair_visits += part.repair_visits;
        return acc;
      });
  stats.sources_untouched = repaired.sources_untouched;
  stats.sources_repaired = repaired.sources_repaired;
  stats.sources_rebuilt = repaired.sources_rebuilt;
  stats.repair_visits = repaired.repair_visits;
  return stats;
}

check::Report DynamicApsp::verify(NodeId source) const {
  if (!cached(source)) throw std::logic_error("DynamicApsp::verify: source not cached");
  return check::certify_distances(g_, source, src_[source]->dist);
}

check::Report DynamicApsp::verify_all_cached() const {
  check::Report report;
  for (NodeId v = 0; v < src_.size(); ++v)
    if (src_[v] != nullptr) report.merge(verify(v));
  return report;
}

void DynamicApsp::corrupt_cache_for_test(NodeId source, NodeId victim,
                                         std::uint32_t value) {
  if (!cached(source))
    throw std::logic_error("DynamicApsp::corrupt_cache_for_test: source not cached");
  src_[source]->dist[victim] = value;
}

}  // namespace flattree::inc
