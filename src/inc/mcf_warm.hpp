#pragma once
// Warm-start cache for Garg-Koenemann solves across a sweep.
//
// Wraps mcf::max_concurrent_flow with a one-deep memory of the previous
// instance and its terminal solver state, and picks the strongest safe
// warm tier per call (see mcf::McfWarmState):
//
//   * identical instance (same link list bit-for-bit, same commodities,
//     same epsilon/options) -> exact resume: bitwise-identical result,
//     every prior phase saved;
//   * same node space, overlapping links -> dual seed: prior lengths are
//     mapped link-by-link onto the new instance (matched by normalized
//     endpoints + exact capacity, multiset semantics for parallel links),
//     fresh links start at the cold floor;
//   * anything else (node-count change, first call) -> cold solve.
//
// Every warm-started result is re-certified through check::certify before
// it is returned — correctness is externally verified per solve, not
// assumed from the warm-start reasoning (a failed certificate throws
// std::runtime_error; it indicates a solver bug, not bad input). Cold
// solves are returned as-is, exactly what the caller would have gotten
// without the cache.
//
// Not thread-safe: one cache per sweep loop, called sequentially (the
// solver parallelizes internally).

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mcf/commodity.hpp"
#include "mcf/garg_koenemann.hpp"

namespace flattree::inc {

/// Which warm tier a solve used (McfWarmCache::last_tier()).
enum class WarmTier { Cold, DualSeed, ExactResume };

/// Tuning knobs for McfWarmCache.
struct McfWarmCacheOptions {
  /// Restrict the cache to the ExactResume tier. Exact resumes are bitwise
  /// identical to a cold solve; dual seeds are certified-correct but take a
  /// different phase trajectory, so their bounds differ in the low bits.
  /// Benches that promise byte-identical stdout under --incremental
  /// (bench_failures, bench_hybrid) run exact-only; sweeps that only need
  /// certified bounds can keep dual seeding on.
  bool exact_only = false;
};

/// Warm-start cache around mcf::max_concurrent_flow: keeps the previous
/// solve's phase state per commodity-set shape and resumes (exactly, or
/// via certified dual seeding — see McfWarmCacheOptions) when a sweep
/// re-solves a slightly edited instance.
class McfWarmCache {
 public:
  McfWarmCache() = default;
  explicit McfWarmCache(McfWarmCacheOptions options) : opt_(options) {}

  /// Drop-in replacement for mcf::max_concurrent_flow. `options`'
  /// warm_start/export_state fields are owned by the cache and must be
  /// null (std::invalid_argument otherwise).
  mcf::McfResult solve(const graph::Graph& g,
                       const std::vector<mcf::Commodity>& commodities,
                       const mcf::McfOptions& options);

  /// Tier used by the most recent solve().
  WarmTier last_tier() const { return last_tier_; }

  /// Forgets the stored instance (next solve is cold).
  void reset();

 private:
  struct Instance {
    std::size_t nodes = 0;
    std::vector<graph::Link> links;  ///< live links in slot order
    std::vector<mcf::Commodity> commodities;
    double epsilon = 0.0;
    std::uint64_t max_phases = 0;
    /// Deadline budget (src/svc SLO layer). Part of the instance key: a
    /// resume across different budgets would return the old budget's
    /// trajectory, not what a cold solve under the new budget produces.
    std::uint64_t max_augmentations = 0;
    bool allow_unreachable = false;
  };

  McfWarmCacheOptions opt_;
  bool has_state_ = false;
  Instance prev_;
  mcf::McfWarmState state_;
  WarmTier last_tier_ = WarmTier::Cold;
};

}  // namespace flattree::inc
