#pragma once
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320 — the zip/png/
// ethernet checksum). The durable service formats (journal v2 frames,
// snapshot v1 trailers) use it to detect torn writes and bit corruption;
// the framed text formats carry it as fixed-width lowercase hex so the
// encodings stay canonical and byte-comparable.

#include <cstddef>
#include <cstdint>
#include <string>

namespace flattree::util {

/// Initial state for a crc32_update chain.
inline std::uint32_t crc32_init() { return 0xFFFFFFFFu; }

/// Feeds `len` bytes into a running CRC-32 state (start from crc32_init(),
/// finish with crc32_final()).
std::uint32_t crc32_update(std::uint32_t state, const void* data, std::size_t len);

/// Finalizes a crc32_update chain into the conventional CRC-32 value.
inline std::uint32_t crc32_final(std::uint32_t state) { return state ^ 0xFFFFFFFFu; }

/// One-shot CRC-32 of a byte string.
std::uint32_t crc32(const std::string& bytes);

/// Fixed-width lowercase hex rendering ("%08x") used by the framed formats.
std::string crc32_hex(std::uint32_t crc);

/// Inverse of crc32_hex; false unless `hex` is exactly 8 lowercase hex digits.
bool parse_crc32_hex(const std::string& hex, std::uint32_t& out);

}  // namespace flattree::util
