#pragma once
// Aligned-table and CSV emission for bench output.
//
// Every bench prints a human-readable aligned table (what the paper's figure
// shows as curves) followed by a machine-readable CSV block so results can
// be re-plotted.

#include <cstdint>
#include <string>
#include <vector>

namespace flattree::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; values are appended with add/num.
  void begin_row();
  void add(const std::string& cell);
  void num(double value, int precision = 4);
  void integer(std::int64_t value);

  std::size_t rows() const { return cells_.size(); }
  std::size_t columns() const { return headers_.size(); }
  /// Cell accessor (row-major); throws on out-of-range.
  const std::string& at(std::size_t row, std::size_t col) const;

  /// Renders the aligned, padded table.
  std::string to_aligned() const;
  /// Renders RFC 4180 CSV (fields containing commas, quotes, CR, or LF
  /// are quoted; embedded quotes are doubled).
  std::string to_csv() const;

  /// Prints aligned table and CSV block (the standard bench footer).
  void print(const std::string& title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

/// Formats a double with fixed precision, trimming to a compact form.
std::string format_double(double value, int precision = 4);

/// RFC 4180 field escaping used by Table::to_csv (exposed for tests and
/// ad-hoc CSV writers).
std::string csv_escape(const std::string& s);

}  // namespace flattree::util
