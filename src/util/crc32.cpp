#include "util/crc32.hpp"

#include <array>

namespace flattree::util {

namespace {

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    t[i] = c;
  }
  return t;
}

const std::array<std::uint32_t, 256>& table() {
  static const std::array<std::uint32_t, 256> t = make_table();
  return t;
}

}  // namespace

std::uint32_t crc32_update(std::uint32_t state, const void* data, std::size_t len) {
  const auto& t = table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i)
    state = t[(state ^ p[i]) & 0xFFu] ^ (state >> 8);
  return state;
}

std::uint32_t crc32(const std::string& bytes) {
  return crc32_final(crc32_update(crc32_init(), bytes.data(), bytes.size()));
}

std::string crc32_hex(std::uint32_t crc) {
  static const char* digits = "0123456789abcdef";
  std::string s(8, '0');
  for (int i = 7; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = digits[crc & 0xFu];
    crc >>= 4;
  }
  return s;
}

bool parse_crc32_hex(const std::string& hex, std::uint32_t& out) {
  if (hex.size() != 8) return false;
  std::uint32_t v = 0;
  for (char c : hex) {
    std::uint32_t d;
    if (c >= '0' && c <= '9')
      d = static_cast<std::uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      d = static_cast<std::uint32_t>(c - 'a' + 10);
    else
      return false;
    v = (v << 4) | d;
  }
  out = v;
  return true;
}

}  // namespace flattree::util
