#pragma once
// Small descriptive-statistics helpers used by metrics and benches.

#include <cstddef>
#include <vector>

namespace flattree::util {

/// Streaming accumulator for mean/variance/min/max (Welford's algorithm).
class Accumulator {
 public:
  void add(double x);
  /// Merges another accumulator into this one (parallel-combine safe).
  void merge(const Accumulator& other);

  std::size_t count() const { return n_; }
  double sum() const { return mean_ * static_cast<double>(n_); }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stdev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample with linear interpolation, p in [0,100].
/// Sorts a copy; for repeated queries use Distribution below.
double percentile(std::vector<double> samples, double p);

/// Sorted-sample wrapper answering repeated quantile queries.
class Distribution {
 public:
  explicit Distribution(std::vector<double> samples);
  std::size_t count() const { return sorted_.size(); }
  double quantile(double q) const;  ///< q in [0,1]
  double median() const { return quantile(0.5); }
  double mean() const;

 private:
  std::vector<double> sorted_;
};

/// True when |a-b| <= tol * max(1, |a|, |b|).
bool approx_equal(double a, double b, double tol = 1e-9);

}  // namespace flattree::util
