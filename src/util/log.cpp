#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace flattree::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

void log_debug(const std::string& message) { log(LogLevel::Debug, message); }
void log_info(const std::string& message) { log(LogLevel::Info, message); }
void log_warn(const std::string& message) { log(LogLevel::Warn, message); }
void log_error(const std::string& message) { log(LogLevel::Error, message); }

}  // namespace flattree::util
