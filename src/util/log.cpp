#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace flattree::util {

namespace {

/// Reads FLATTREE_LOG once at startup; unset or unparseable keeps Warn.
LogLevel initial_level() {
  const char* env = std::getenv("FLATTREE_LOG");
  if (env == nullptr) return LogLevel::Warn;
  LogLevel parsed = LogLevel::Warn;
  return parse_log_level(env, &parsed) ? parsed : LogLevel::Warn;
}

std::atomic<LogLevel> g_level{initial_level()};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

/// Case-insensitive ASCII comparison (level names are plain letters).
bool iequals(const char* a, const char* b) {
  for (; *a != '\0' && *b != '\0'; ++a, ++b) {
    char ca = *a, cb = *b;
    if (ca >= 'A' && ca <= 'Z') ca = static_cast<char>(ca - 'A' + 'a');
    if (cb >= 'A' && cb <= 'Z') cb = static_cast<char>(cb - 'A' + 'a');
    if (ca != cb) return false;
  }
  return *a == '\0' && *b == '\0';
}

}  // namespace

bool parse_log_level(const char* text, LogLevel* out) {
  if (text == nullptr || out == nullptr) return false;
  if (iequals(text, "debug")) { *out = LogLevel::Debug; return true; }
  if (iequals(text, "info")) { *out = LogLevel::Info; return true; }
  if (iequals(text, "warn") || iequals(text, "warning")) { *out = LogLevel::Warn; return true; }
  if (iequals(text, "error")) { *out = LogLevel::Error; return true; }
  if (iequals(text, "off") || iequals(text, "none")) { *out = LogLevel::Off; return true; }
  return false;
}

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  // One fwrite per line: concurrent loggers may interleave lines but never
  // characters within a line (POSIX stdio locks the stream per call).
  std::string line;
  line.reserve(message.size() + 16);
  line += '[';
  line += level_name(level);
  line += "] ";
  line += message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

void log_debug(const std::string& message) { log(LogLevel::Debug, message); }
void log_info(const std::string& message) { log(LogLevel::Info, message); }
void log_warn(const std::string& message) { log(LogLevel::Warn, message); }
void log_error(const std::string& message) { log(LogLevel::Error, message); }

}  // namespace flattree::util
