#pragma once
// Deterministic pseudo-random number generation.
//
// All randomized components of the library (random-graph construction,
// workload placement, ECMP hashing salt, flow arrival processes) take an
// explicit Rng so experiments are reproducible from a single seed. The
// engine is xoshiro256** seeded via splitmix64 — fast, high quality, and
// stable across platforms (unlike std::mt19937 + std::uniform_int_distribution,
// whose outputs are not portable between standard library implementations).

#include <array>
#include <cstdint>
#include <vector>

namespace flattree::util {

/// xoshiro256** engine with convenience sampling helpers.
/// Satisfies UniformRandomBitGenerator, so it can also be handed to
/// std:: algorithms (e.g. std::shuffle) when portability of the exact
/// sequence does not matter.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit output.
  std::uint64_t operator()();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Exponentially distributed double with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p);

  /// In-place Fisher-Yates shuffle with portable output.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Picks a uniformly random element index of a non-empty container size.
  std::size_t index(std::size_t size) { return static_cast<std::size_t>(below(size)); }

  /// Derives an independent child generator (for parallel or per-component
  /// streams) without correlating with this generator's future output.
  Rng split();

  /// Deterministic per-task substream: the generator for stream index `i`
  /// of experiment seed `seed`. Unlike split(), this is a pure function of
  /// (seed, stream) — parallel loops seed chunk i with
  /// `Rng::substream(seed, i)` so results are identical at any thread count
  /// and chunk execution order. Decorrelation comes from two splitmix64
  /// avalanche rounds over the (seed, stream) pair.
  static Rng substream(std::uint64_t seed, std::uint64_t stream);

 private:
  std::array<std::uint64_t, 4> state_;
};

/// splitmix64 step; exposed for hashing-style uses (e.g. ECMP flow hashing).
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless 64-bit mix of a value (single splitmix64 round).
std::uint64_t mix64(std::uint64_t value);

}  // namespace flattree::util
