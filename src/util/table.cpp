#include "util/table.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace flattree::util {

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: need at least one column");
}

void Table::begin_row() { cells_.emplace_back(); }

void Table::add(const std::string& cell) {
  if (cells_.empty()) throw std::logic_error("Table: add() before begin_row()");
  if (cells_.back().size() >= headers_.size())
    throw std::logic_error("Table: row has more cells than headers");
  cells_.back().push_back(cell);
}

void Table::num(double value, int precision) { add(format_double(value, precision)); }

void Table::integer(std::int64_t value) { add(std::to_string(value)); }

const std::string& Table::at(std::size_t row, std::size_t col) const {
  return cells_.at(row).at(col);
}

std::string Table::to_aligned() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : cells_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << cell << std::string(width[c] - cell.size(), ' ');
      os << (c + 1 < headers_.size() ? "  " : "");
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : cells_) emit(row);
  return os.str();
}

std::string csv_escape(const std::string& s) {
  // RFC 4180: quote fields containing separators, quotes, or line breaks
  // (CR as well as LF — bare CR still breaks most readers); double any
  // embedded quotes.
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

std::string Table::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << (c ? "," : "") << csv_escape(headers_[c]);
  os << '\n';
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size(); ++c) os << (c ? "," : "") << csv_escape(row[c]);
    os << '\n';
  }
  return os.str();
}

void Table::print(const std::string& title) const {
  std::printf("== %s ==\n%s\n-- csv --\n%s\n", title.c_str(), to_aligned().c_str(),
              to_csv().c_str());
}

}  // namespace flattree::util
