#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace flattree::util {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  std::size_t n = n_ + other.n_;
  double delta = other.mean_ - mean_;
  double mean = mean_ + delta * static_cast<double>(other.n_) / static_cast<double>(n);
  m2_ += other.m2_ +
         delta * delta * static_cast<double>(n_) * static_cast<double>(other.n_) /
             static_cast<double>(n);
  mean_ = mean;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ = n;
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stdev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double p) {
  return Distribution(std::move(samples)).quantile(p / 100.0);
}

Distribution::Distribution(std::vector<double> samples) : sorted_(std::move(samples)) {
  if (sorted_.empty()) throw std::invalid_argument("Distribution: empty sample set");
  std::sort(sorted_.begin(), sorted_.end());
}

double Distribution::quantile(double q) const {
  if (q <= 0.0) return sorted_.front();
  if (q >= 1.0) return sorted_.back();
  double pos = q * static_cast<double>(sorted_.size() - 1);
  std::size_t lo = static_cast<std::size_t>(pos);
  double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

double Distribution::mean() const {
  return std::accumulate(sorted_.begin(), sorted_.end(), 0.0) /
         static_cast<double>(sorted_.size());
}

bool approx_equal(double a, double b, double tol) {
  double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

}  // namespace flattree::util
