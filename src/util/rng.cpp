#include "util/rng.hpp"

#include <cmath>

namespace flattree::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t value) { return splitmix64(value); }

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& s : state_) s = splitmix64(seed);
  // Guard against the all-zero state, which xoshiro cannot escape.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) state_[0] = 1;
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // Lemire's method: multiply into 128 bits, reject the biased low band.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::uniform() {
  // 53 uniform bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::exponential(double rate) {
  double u;
  do {
    u = uniform();
  } while (u == 0.0);
  return -std::log(u) / rate;
}

bool Rng::chance(double p) { return uniform() < p; }

Rng Rng::substream(std::uint64_t seed, std::uint64_t stream) {
  return Rng(mix64(seed ^ mix64(0x9e3779b97f4a7c15ULL * (stream + 1))));
}

Rng Rng::split() {
  // Two fresh outputs feed a new seed; splitmix64's avalanche decorrelates.
  std::uint64_t s = (*this)() ^ rotl((*this)(), 31);
  return Rng(s);
}

}  // namespace flattree::util
