#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace flattree::util {

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {}

void CliParser::add_int(const std::string& name, std::int64_t* target,
                        const std::string& help) {
  flags_.push_back({name, Kind::Int, target, help, std::to_string(*target)});
}

void CliParser::add_double(const std::string& name, double* target, const std::string& help) {
  std::ostringstream os;
  os << *target;
  flags_.push_back({name, Kind::Double, target, help, os.str()});
}

void CliParser::add_bool(const std::string& name, bool* target, const std::string& help) {
  flags_.push_back({name, Kind::Bool, target, help, *target ? "true" : "false"});
}

void CliParser::add_string(const std::string& name, std::string* target,
                           const std::string& help) {
  flags_.push_back({name, Kind::String, target, help, *target});
}

const CliParser::Flag* CliParser::find(const std::string& name) const {
  for (const auto& f : flags_)
    if (f.name == name) return &f;
  return nullptr;
}

bool CliParser::assign(const Flag& flag, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  switch (flag.kind) {
    case Kind::Int: {
      long long v = std::strtoll(value.c_str(), &end, 10);
      if (errno != 0 || end == value.c_str() || *end != '\0') return false;
      *static_cast<std::int64_t*>(flag.target) = v;
      return true;
    }
    case Kind::Double: {
      double v = std::strtod(value.c_str(), &end);
      if (errno != 0 || end == value.c_str() || *end != '\0') return false;
      *static_cast<double*>(flag.target) = v;
      return true;
    }
    case Kind::Bool: {
      if (value == "true" || value == "1") {
        *static_cast<bool*>(flag.target) = true;
        return true;
      }
      if (value == "false" || value == "0") {
        *static_cast<bool*>(flag.target) = false;
        return true;
      }
      return false;
    }
    case Kind::String:
      *static_cast<std::string*>(flag.target) = value;
      return true;
  }
  return false;
}

bool CliParser::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      exit_code_ = 0;
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument '%s'\n%s", arg.c_str(),
                   usage().c_str());
      exit_code_ = 2;
      return false;
    }
    std::string body = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = body.find('='); eq != std::string::npos) {
      value = body.substr(eq + 1);
      body = body.substr(0, eq);
      has_value = true;
    }
    const Flag* flag = find(body);
    if (flag == nullptr && body.rfind("no-", 0) == 0) {
      // `--no-name` form for booleans. `--no-name=value` is contradictory
      // (which wins?) so it gets its own error instead of "unknown flag".
      const Flag* base = find(body.substr(3));
      if (base != nullptr && base->kind == Kind::Bool) {
        if (has_value) {
          std::fprintf(stderr,
                       "flag '--%s' does not take a value (use --%s=0|1 instead)\n",
                       body.c_str(), body.substr(3).c_str());
          exit_code_ = 2;
          return false;
        }
        *static_cast<bool*>(base->target) = false;
        continue;
      }
    }
    if (flag == nullptr) {
      std::fprintf(stderr, "unknown flag '--%s'\n%s", body.c_str(), usage().c_str());
      exit_code_ = 2;
      return false;
    }
    if (!has_value) {
      if (flag->kind == Kind::Bool) {
        *static_cast<bool*>(flag->target) = true;
        continue;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flag '--%s' expects a value\n", body.c_str());
        exit_code_ = 2;
        return false;
      }
      value = argv[++i];
    }
    if (!assign(*flag, value)) {
      std::fprintf(stderr, "invalid value '%s' for flag '--%s'\n", value.c_str(),
                   body.c_str());
      exit_code_ = 2;
      return false;
    }
  }
  return true;
}

std::string CliParser::usage() const {
  std::ostringstream os;
  os << description_ << "\n\nFlags:\n";
  for (const auto& f : flags_) {
    os << "  --" << f.name;
    switch (f.kind) {
      case Kind::Int: os << " <int>"; break;
      case Kind::Double: os << " <float>"; break;
      case Kind::Bool: os << " | --no-" << f.name; break;
      case Kind::String: os << " <string>"; break;
    }
    os << "\n      " << f.help << " (default: " << f.default_repr << ")\n";
  }
  return os.str();
}

}  // namespace flattree::util
