#pragma once
// Minimal command-line flag parser for benches and examples.
//
// Supports `--name value`, `--name=value`, and boolean `--name` /
// `--no-name` forms. Flags are registered with defaults and a help string;
// `--help` prints usage and exits. Unknown flags are an error (typos in
// experiment parameters should never be silently ignored).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace flattree::util {

class CliParser {
 public:
  explicit CliParser(std::string program_description);

  /// Registers a flag bound to `*target` (which also supplies the default).
  void add_int(const std::string& name, std::int64_t* target, const std::string& help);
  void add_double(const std::string& name, double* target, const std::string& help);
  void add_bool(const std::string& name, bool* target, const std::string& help);
  void add_string(const std::string& name, std::string* target, const std::string& help);

  /// Parses argv. Returns false (after printing a message) on error or
  /// `--help`; the caller should exit(0)/exit(2) accordingly via exit_code().
  bool parse(int argc, char** argv);
  int exit_code() const { return exit_code_; }

  std::string usage() const;

 private:
  enum class Kind { Int, Double, Bool, String };
  struct Flag {
    std::string name;
    Kind kind;
    void* target;
    std::string help;
    std::string default_repr;
  };

  const Flag* find(const std::string& name) const;
  bool assign(const Flag& flag, const std::string& value);

  std::string description_;
  std::vector<Flag> flags_;
  int exit_code_ = 0;
};

}  // namespace flattree::util
