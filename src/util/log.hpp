#pragma once
// Tiny leveled logger (stderr). Benches use Info for progress on long
// solver runs; libraries log nothing above Debug by default.

#include <string>

namespace flattree::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

void log(LogLevel level, const std::string& message);

void log_debug(const std::string& message);
void log_info(const std::string& message);
void log_warn(const std::string& message);
void log_error(const std::string& message);

}  // namespace flattree::util
