#pragma once
// Tiny leveled logger (stderr). Benches use Info for progress on long
// solver runs; libraries log nothing above Debug by default.
//
// The initial threshold can be set from the environment:
//   FLATTREE_LOG=debug|info|warn|error|off
// (case-insensitive; unset or unrecognized keeps the Warn default).
// Emission is thread-safe: each message is written with a single fwrite,
// so concurrent lines never interleave mid-line.

#include <string>

namespace flattree::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Parses a level name ("debug", "info", "warn"/"warning", "error",
/// "off"/"none"; case-insensitive). Returns false (and leaves `*out`
/// untouched) for anything else. Used for the FLATTREE_LOG env var.
bool parse_log_level(const char* text, LogLevel* out);

/// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

void log(LogLevel level, const std::string& message);

void log_debug(const std::string& message);
void log_info(const std::string& message);
void log_warn(const std::string& message);
void log_error(const std::string& message);

}  // namespace flattree::util
