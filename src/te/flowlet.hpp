#pragma once
// Flowlet-based load balancing: re-hash bursty flows at idle gaps.
//
// Per-flow hashing pins a flow to one path for its lifetime, so an
// unlucky hash congests a link forever. Flowlet switching [Sinha et al.,
// FLARE] exploits the burst structure of transport traffic: when a flow
// pauses for longer than the network's path-delay skew, the next burst (a
// "flowlet") can take a different path without reordering. The table
// below detects such gaps in deterministic simulation time and derives a
// fresh hash salt per flowlet with the same two-round splitmix64 mixing
// Rng::substream uses, so rebalancing is a pure function of (flow id,
// observation times) — byte-identical across runs and thread counts.

#include <cstdint>
#include <unordered_map>

namespace flattree::te {

/// Tracks per-flow flowlet state and produces the salted flow id the FIB
/// hash should use. Not thread-safe (the packet simulator is a
/// single-threaded discrete-event loop).
///
/// Long-run memory is bounded: when the table grows past `max_flows`, a
/// sweep evicts every entry idle for more than kEvictGapFactor idle gaps.
/// Eviction is deterministic — it triggers on table size (a pure function
/// of the observation sequence) and the survivor *set* is decided per
/// entry by `now - last_seen`, independent of hash-map iteration order.
/// A live flow (any flow observed within the eviction horizon) keeps its
/// state, so its salts are identical to an unbounded table's; a flow that
/// returns after eviction restarts at flowlet 0 — indistinguishable from
/// a fresh flow, which is exactly how a real switch's finite flowlet
/// table behaves.
class FlowletTable {
 public:
  /// Idle multiple that makes an entry evictable: far beyond any gap that
  /// still matters for reordering.
  static constexpr double kEvictGapFactor = 8.0;
  /// Default table-size watermark that triggers an eviction sweep.
  static constexpr std::size_t kDefaultMaxFlows = 1u << 16;

  /// `idle_gap` is the minimum quiet time that starts a new flowlet;
  /// a non-positive gap disables flowlet detection (salt() returns the
  /// flow id unchanged — plain per-flow hashing). `max_flows` caps the
  /// table before idle entries are swept (see class comment).
  explicit FlowletTable(double idle_gap, std::size_t max_flows = kDefaultMaxFlows);

  /// Observes a packet of `flow_id` at simulation time `now` (times per
  /// flow must be non-decreasing) and returns the flow's current salted
  /// id. The first packet of a flow starts flowlet 0 with salt == flow_id,
  /// so enabling flowlets changes nothing until a gap actually occurs.
  std::uint64_t salt(std::uint64_t flow_id, double now);

  /// Number of flowlet transitions (re-hashes) observed so far.
  std::uint64_t switches() const { return switches_; }
  /// Number of flows currently tracked (evicted entries excluded).
  std::size_t flows() const { return table_.size(); }
  /// Number of idle entries evicted so far (also billed to the
  /// sim.flowlet.evictions counter).
  std::uint64_t evictions() const { return evictions_; }
  /// The configured idle gap (non-positive = disabled).
  double idle_gap() const { return idle_gap_; }
  /// The configured sweep watermark.
  std::size_t max_flows() const { return max_flows_; }

 private:
  void sweep(double now);

  struct State {
    double last_seen = 0.0;
    std::uint64_t index = 0;  ///< flowlet ordinal within the flow
  };
  std::unordered_map<std::uint64_t, State> table_;
  double idle_gap_;
  std::size_t max_flows_;
  std::size_t sweep_watermark_;
  std::uint64_t switches_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace flattree::te
