#pragma once
// Flowlet-based load balancing: re-hash bursty flows at idle gaps.
//
// Per-flow hashing pins a flow to one path for its lifetime, so an
// unlucky hash congests a link forever. Flowlet switching [Sinha et al.,
// FLARE] exploits the burst structure of transport traffic: when a flow
// pauses for longer than the network's path-delay skew, the next burst (a
// "flowlet") can take a different path without reordering. The table
// below detects such gaps in deterministic simulation time and derives a
// fresh hash salt per flowlet with the same two-round splitmix64 mixing
// Rng::substream uses, so rebalancing is a pure function of (flow id,
// observation times) — byte-identical across runs and thread counts.

#include <cstdint>
#include <unordered_map>

namespace flattree::te {

/// Tracks per-flow flowlet state and produces the salted flow id the FIB
/// hash should use. Not thread-safe (the packet simulator is a
/// single-threaded discrete-event loop).
class FlowletTable {
 public:
  /// `idle_gap` is the minimum quiet time that starts a new flowlet;
  /// a non-positive gap disables flowlet detection (salt() returns the
  /// flow id unchanged — plain per-flow hashing).
  explicit FlowletTable(double idle_gap);

  /// Observes a packet of `flow_id` at simulation time `now` (times per
  /// flow must be non-decreasing) and returns the flow's current salted
  /// id. The first packet of a flow starts flowlet 0 with salt == flow_id,
  /// so enabling flowlets changes nothing until a gap actually occurs.
  std::uint64_t salt(std::uint64_t flow_id, double now);

  /// Number of flowlet transitions (re-hashes) observed so far.
  std::uint64_t switches() const { return switches_; }
  /// Number of flows seen.
  std::size_t flows() const { return table_.size(); }
  /// The configured idle gap (non-positive = disabled).
  double idle_gap() const { return idle_gap_; }

 private:
  struct State {
    double last_seen = 0.0;
    std::uint64_t index = 0;  ///< flowlet ordinal within the flow
  };
  std::unordered_map<std::uint64_t, State> table_;
  double idle_gap_;
  std::uint64_t switches_ = 0;
};

}  // namespace flattree::te
