#include "te/flowlet.hpp"

#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace flattree::te {

namespace {

obs::Counter c_evictions("sim.flowlet.evictions");

}  // namespace

FlowletTable::FlowletTable(double idle_gap, std::size_t max_flows)
    : idle_gap_(idle_gap), max_flows_(max_flows), sweep_watermark_(max_flows) {}

std::uint64_t FlowletTable::salt(std::uint64_t flow_id, double now) {
  if (idle_gap_ <= 0.0) return flow_id;
  auto [it, inserted] = table_.try_emplace(flow_id);
  State& state = it->second;
  if (!inserted && now - state.last_seen > idle_gap_) {
    ++state.index;
    ++switches_;
  }
  state.last_seen = now;
  const std::uint64_t index = state.index;
  // Only a fresh insertion can push the size past the watermark; the
  // current flow was just stamped with `now`, so it always survives.
  if (inserted && table_.size() > sweep_watermark_) sweep(now);
  if (index == 0) return flow_id;
  // Substream-style decorrelation: two avalanche rounds over the
  // (flow, flowlet-index) pair, mirroring Rng::substream(seed, stream).
  return util::mix64(util::mix64(flow_id + 0x9e3779b97f4a7c15ULL) ^ index);
}

void FlowletTable::sweep(double now) {
  const double horizon = kEvictGapFactor * idle_gap_;
  std::uint64_t evicted = 0;
  for (auto it = table_.begin(); it != table_.end();) {
    if (now - it->second.last_seen > horizon) {
      it = table_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  evictions_ += evicted;
  if (evicted != 0 && obs::enabled()) c_evictions.add(evicted);
  // If the table is full of genuinely live flows, nothing was evictable;
  // back the watermark off (grow by half the cap) so the sweep stays
  // amortized instead of running on every insertion. Both branches depend
  // only on sizes, keeping the trigger sequence deterministic.
  sweep_watermark_ =
      table_.size() <= max_flows_ ? max_flows_ : table_.size() + max_flows_ / 2;
}

}  // namespace flattree::te
