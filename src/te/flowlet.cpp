#include "te/flowlet.hpp"

#include "util/rng.hpp"

namespace flattree::te {

FlowletTable::FlowletTable(double idle_gap) : idle_gap_(idle_gap) {}

std::uint64_t FlowletTable::salt(std::uint64_t flow_id, double now) {
  if (idle_gap_ <= 0.0) return flow_id;
  auto [it, inserted] = table_.try_emplace(flow_id);
  State& state = it->second;
  if (!inserted && now - state.last_seen > idle_gap_) {
    ++state.index;
    ++switches_;
  }
  state.last_seen = now;
  if (state.index == 0) return flow_id;
  // Substream-style decorrelation: two avalanche rounds over the
  // (flow, flowlet-index) pair, mirroring Rng::substream(seed, stream).
  return util::mix64(util::mix64(flow_id + 0x9e3779b97f4a7c15ULL) ^ state.index);
}

}  // namespace flattree::te
