#pragma once
// WCMP weight compilers: derive integer next-hop weights from path
// multiplicities or solver flow splits, quantized deterministically.
//
// Two sources of weights (both install into a te::WeightedFib whose
// per-entry weights sum to the weight budget):
//
//   * Path multiplicities (compile_wcmp_paths): every candidate path of a
//     routing scheme (ECMP's equal-cost set, or Yen's k shortest paths)
//     contributes one count to each (switch, dst, link) hop it crosses;
//     the per-entry counts are the share vector. With ECMP this weights a
//     next hop by the number of shortest paths through it — the classic
//     WCMP derivation; with KSP the same hop-by-hop caveat as
//     routing::compile_fib applies (verify_weighted_fib detects loops).
//   * MCF arc flows (compile_wcmp_mcf): shares come from a
//     max-concurrent-flow solution's arc_flow vector (mcf::McfResult
//     convention: arc 2l = link l a->b, arc 2l+1 = b->a) restricted to the
//     shortest-path DAG toward each destination, so the solver's split of
//     load over equal-cost hops programs the FIB. Entries whose candidate
//     arcs carry no flow fall back to an even split.
//
// Quantization (quantize_weights) uses largest-remainder rounding: floor
// shares scaled to the budget, then hand out the remaining units by
// descending fractional remainder with index order as the deterministic
// tie-break. The result always sums to the budget and never rounds a
// positive share set to all zeros. Zero-weight rules are pruned before
// installation.

#include <cstdint>
#include <utility>
#include <vector>

#include "routing/paths.hpp"
#include "te/weighted_fib.hpp"
#include "topo/topology.hpp"

namespace flattree::te {

/// Knobs shared by both WCMP compilers.
struct WcmpOptions {
  /// Per-entry weight sum (hardware table resolution); must be positive.
  std::uint32_t weight_budget = 64;
};

/// Largest-remainder quantization of non-negative `shares` to integers
/// summing to `budget`. Throws std::invalid_argument when every share is
/// zero (or negative) or the budget is zero, and std::logic_error if the
/// conservation fix-up loops cannot make the sum exact (no positive share
/// left to absorb residue — unreachable for valid inputs, but guarded so
/// FP pathologies fail loudly instead of corrupting FIB weights).
/// Non-finite shares are tolerated: a share at +inf (or a share sum that
/// overflows to +inf) contributes no floor weight and the budget is
/// redistributed over the positive shares deterministically. Remainder
/// ties break toward the lower index.
std::vector<std::uint32_t> quantize_weights(const std::vector<double>& shares,
                                            std::uint32_t budget);

/// Compiles a weighted FIB from a routing scheme's path sets for every
/// ordered pair in `pairs`: per-hop weights are path multiplicities,
/// quantized per (switch, dst) entry. Counters: te.wcmp.compiles,
/// te.wcmp.entries, te.wcmp.rules, te.wcmp.weight_total.
WeightedFib compile_wcmp_paths(const topo::Topology& topo, routing::Routing& routing,
                               const std::vector<std::pair<NodeId, NodeId>>& pairs,
                               const WcmpOptions& options = {});

/// Compiles a weighted FIB over the shortest-path DAG toward each
/// destination in `pairs`, weighting candidate hops by `arc_flow` (GK arc
/// convention, see header comment; size must be 2 * link_count). Only
/// switches reachable from some source of the pair set along the DAG get
/// entries. Same counters as compile_wcmp_paths.
WeightedFib compile_wcmp_mcf(const topo::Topology& topo,
                             const std::vector<std::pair<NodeId, NodeId>>& pairs,
                             const std::vector<double>& arc_flow,
                             const WcmpOptions& options = {});

}  // namespace flattree::te
