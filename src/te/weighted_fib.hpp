#pragma once
// Weighted forwarding tables (WCMP) — the traffic-engineering extension of
// routing::Fib.
//
// ECMP splits a flow set evenly over equal-cost next hops; WCMP [Zhou et
// al., EuroSys'14] attaches an integer weight to each next-hop rule so the
// split tracks downstream capacity or a solver's flow assignment instead.
// A WeightedFib stores, per (switch, destination) entry, a list of
// (link, weight) rules whose weights sum to the table's weight budget;
// select() hashes a flow id onto the weight line deterministically, so a
// uniform flow-id sweep hits each next hop proportionally to its weight.
//
// Tables are compiled by te::compile_wcmp_* (te/wcmp.hpp) and
// model-checked by te::verify_weighted_fib plus the Report-style
// check::validate_weighted_fib (check/te_check.hpp). add_route()
// deliberately accepts any weight — including zero — so validators can be
// exercised against corrupted tables; the compilers never emit zero-weight
// rules.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "routing/fib.hpp"
#include "topo/topology.hpp"

namespace flattree::te {

using routing::NodeId;

/// One weighted forwarding rule: take `link` with probability
/// weight / (entry weight sum).
struct WeightedHop {
  graph::LinkId link = 0;
  std::uint32_t weight = 0;
};

/// Per-switch weighted forwarding table: destination -> weighted rules.
class WeightedFib {
 public:
  /// `weight_budget` is the per-entry weight sum the compilers quantize to
  /// (and validators check); it bounds the rule weight resolution the way
  /// hardware WCMP table entries do.
  explicit WeightedFib(std::size_t switches, std::uint32_t weight_budget = 64);

  /// Adds (or tops up) a rule at `at` toward `dst` via `link`. Weights
  /// accumulate on repeated calls for the same (at, dst, link). Zero
  /// weights are stored verbatim — validators flag them; compilers prune
  /// them before installation.
  void add_route(NodeId at, NodeId dst, graph::LinkId link, std::uint32_t weight);

  /// Rules at `at` toward `dst` in installation order (empty if none).
  const std::vector<WeightedHop>& next_hops(NodeId at, NodeId dst) const;

  /// Deterministic weighted per-flow choice: hashes (at, dst, flow_id)
  /// onto [0, entry weight sum) and walks the rule list. Zero-weight rules
  /// are never selected. Throws std::runtime_error when no rule with
  /// positive weight is installed.
  graph::LinkId select(NodeId at, NodeId dst, std::uint64_t flow_id) const;

  /// The per-entry weight sum compilers target (see constructor).
  std::uint32_t weight_budget() const { return weight_budget_; }

  /// Destinations with at least one rule at `at`, ascending (validators
  /// iterate the table deterministically through this).
  std::vector<NodeId> destinations(NodeId at) const;

  std::size_t switch_count() const { return tables_.size(); }
  /// Total number of (switch, destination, link) rules.
  std::size_t rule_count() const;
  /// Number of (switch, destination) entries.
  std::size_t entry_count() const;
  /// Sum of all rule weights across the table.
  std::uint64_t total_weight() const;
  /// Largest per-switch rule count (TCAM pressure proxy).
  std::size_t max_rules_per_switch() const;

 private:
  std::vector<std::unordered_map<NodeId, std::vector<WeightedHop>>> tables_;
  std::uint32_t weight_budget_;
  static const std::vector<WeightedHop> kEmpty;
};

/// Outcome of a weighted-FIB model check (mirrors routing::FibVerification).
struct WeightedFibVerification {
  bool ok = false;
  std::size_t pairs_checked = 0;
  std::uint32_t max_walk_hops = 0;  ///< longest greedy walk seen
  std::string error;                ///< first violation description
};

/// Model-checks the weighted FIB for the given pairs: from src, every
/// choice of positive-weight next hop must reach dst within `hop_limit`
/// hops without revisiting a switch (exhaustive DFS over choices), every
/// stored rule must carry a positive weight, and every non-empty entry's
/// weights must sum to the table's weight budget. The Report-style variant
/// with per-violation codes is check::validate_weighted_fib.
WeightedFibVerification verify_weighted_fib(
    const topo::Topology& topo, const WeightedFib& fib,
    const std::vector<std::pair<NodeId, NodeId>>& pairs, std::uint32_t hop_limit = 32);

}  // namespace flattree::te
