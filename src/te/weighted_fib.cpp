#include "te/weighted_fib.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace flattree::te {

const std::vector<WeightedHop> WeightedFib::kEmpty{};

WeightedFib::WeightedFib(std::size_t switches, std::uint32_t weight_budget)
    : tables_(switches), weight_budget_(weight_budget) {
  if (weight_budget == 0)
    throw std::invalid_argument("WeightedFib: weight budget must be positive");
}

void WeightedFib::add_route(NodeId at, NodeId dst, graph::LinkId link,
                            std::uint32_t weight) {
  auto& hops = tables_.at(at)[dst];
  for (WeightedHop& hop : hops)
    if (hop.link == link) {
      hop.weight += weight;
      return;
    }
  hops.push_back({link, weight});
}

const std::vector<WeightedHop>& WeightedFib::next_hops(NodeId at, NodeId dst) const {
  const auto& table = tables_.at(at);
  auto it = table.find(dst);
  return it == table.end() ? kEmpty : it->second;
}

graph::LinkId WeightedFib::select(NodeId at, NodeId dst, std::uint64_t flow_id) const {
  const auto& hops = next_hops(at, dst);
  std::uint64_t total = 0;
  for (const WeightedHop& hop : hops) total += hop.weight;
  if (total == 0)
    throw std::runtime_error("WeightedFib::select: no positive-weight route installed");
  std::uint64_t h =
      util::mix64(flow_id ^ ((static_cast<std::uint64_t>(at) << 32) | dst));
  std::uint64_t point = h % total;
  for (const WeightedHop& hop : hops) {
    if (point < hop.weight) return hop.link;
    point -= hop.weight;
  }
  return hops.back().link;  // unreachable: point < total by construction
}

std::vector<NodeId> WeightedFib::destinations(NodeId at) const {
  std::vector<NodeId> dsts;
  dsts.reserve(tables_.at(at).size());
  for (const auto& [dst, hops] : tables_.at(at)) dsts.push_back(dst);
  std::sort(dsts.begin(), dsts.end());
  return dsts;
}

std::size_t WeightedFib::rule_count() const {
  std::size_t total = 0;
  for (const auto& table : tables_)
    for (const auto& [dst, hops] : table) total += hops.size();
  return total;
}

std::size_t WeightedFib::entry_count() const {
  std::size_t total = 0;
  for (const auto& table : tables_) total += table.size();
  return total;
}

std::uint64_t WeightedFib::total_weight() const {
  std::uint64_t total = 0;
  for (const auto& table : tables_)
    for (const auto& [dst, hops] : table)
      for (const WeightedHop& hop : hops) total += hop.weight;
  return total;
}

std::size_t WeightedFib::max_rules_per_switch() const {
  std::size_t best = 0;
  for (const auto& table : tables_) {
    std::size_t rules = 0;
    for (const auto& [dst, hops] : table) rules += hops.size();
    best = std::max(best, rules);
  }
  return best;
}

namespace {

/// Per-destination walk check over positive-weight rules, with the same
/// memoized good/on-stack scheme as routing::verify_fib.
class WeightedDestinationChecker {
 public:
  WeightedDestinationChecker(const topo::Topology& topo, const WeightedFib& fib,
                             NodeId dst, std::uint32_t hop_limit)
      : topo_(topo), fib_(fib), dst_(dst), hop_limit_(hop_limit),
        state_(topo.switch_count(), State::Unknown),
        depth_(topo.switch_count(), 0) {}

  /// Returns empty on success, else a violation description.
  std::string check(NodeId src, std::uint32_t& max_hops) {
    std::string err = visit(src);
    if (err.empty()) max_hops = std::max(max_hops, depth_[src]);
    return err;
  }

 private:
  enum class State : std::uint8_t { Unknown, OnStack, Good };

  std::string visit(NodeId u) {
    if (u == dst_) return {};
    if (state_[u] == State::Good) return {};
    if (state_[u] == State::OnStack) {
      std::ostringstream os;
      os << "forwarding loop through switch " << u << " toward " << dst_;
      return os.str();
    }
    const auto& hops = fib_.next_hops(u, dst_);
    std::uint32_t entry_weight = 0;
    for (const WeightedHop& hop : hops) {
      if (hop.weight == 0) {
        std::ostringstream os;
        os << "zero-weight rule at switch " << u << " toward " << dst_ << " via link "
           << hop.link << " (should have been pruned)";
        return os.str();
      }
      entry_weight += hop.weight;
    }
    if (hops.empty() || entry_weight == 0) {
      std::ostringstream os;
      os << "blackhole: switch " << u << " has no positive-weight route toward "
         << dst_;
      return os.str();
    }
    if (entry_weight != fib_.weight_budget()) {
      std::ostringstream os;
      os << "weight conservation violated at switch " << u << " toward " << dst_
         << ": weights sum to " << entry_weight << ", budget is "
         << fib_.weight_budget();
      return os.str();
    }
    state_[u] = State::OnStack;
    std::uint32_t worst = 0;
    for (const WeightedHop& hop : hops) {
      NodeId v = topo_.graph().link(hop.link).other(u);
      std::string err = visit(v);
      if (!err.empty()) return err;
      worst = std::max(worst, (v == dst_ ? 0u : depth_[v]) + 1u);
    }
    if (worst > hop_limit_) {
      std::ostringstream os;
      os << "walk from switch " << u << " toward " << dst_ << " exceeds " << hop_limit_
         << " hops";
      return os.str();
    }
    depth_[u] = worst;
    state_[u] = State::Good;
    return {};
  }

  const topo::Topology& topo_;
  const WeightedFib& fib_;
  NodeId dst_;
  std::uint32_t hop_limit_;
  std::vector<State> state_;
  std::vector<std::uint32_t> depth_;
};

}  // namespace

WeightedFibVerification verify_weighted_fib(
    const topo::Topology& topo, const WeightedFib& fib,
    const std::vector<std::pair<NodeId, NodeId>>& pairs, std::uint32_t hop_limit) {
  WeightedFibVerification result;
  // Group sources by destination so memoization is shared.
  std::unordered_map<NodeId, std::vector<NodeId>> by_dst;
  for (auto [src, dst] : pairs)
    if (src != dst) by_dst[dst].push_back(src);

  for (const auto& [dst, sources] : by_dst) {
    WeightedDestinationChecker checker(topo, fib, dst, hop_limit);
    for (NodeId src : sources) {
      std::string err = checker.check(src, result.max_walk_hops);
      ++result.pairs_checked;
      if (!err.empty()) {
        result.error = err;
        result.ok = false;
        return result;
      }
    }
  }
  result.ok = true;
  return result;
}

}  // namespace flattree::te
