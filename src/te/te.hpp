#pragma once
// Umbrella header for the traffic-engineering subsystem.
//
// src/te layers load-aware forwarding on top of src/routing and feeds the
// packet simulator's congestion machinery:
//
//   te::WeightedFib        — WCMP tables: integer next-hop weights per
//                            (switch, dst) entry (te/weighted_fib.hpp)
//   te::compile_wcmp_*     — weight derivation from path multiplicities or
//                            MCF arc flows, largest-remainder quantized
//                            (te/wcmp.hpp)
//   te::verify_weighted_fib— walk-level model check; the Report-style
//                            variant is check::validate_weighted_fib
//   te::FlowletTable       — idle-gap flowlet detection with substream
//                            salt mixing (te/flowlet.hpp)
//
// The DCTCP-style ECN control loop lives in sim::PacketSimulator
// (sim/packet_sim.hpp) and consumes WeightedFib + FlowletTable; see
// DESIGN.md §11 for the determinism contract.

#include "te/flowlet.hpp"
#include "te/wcmp.hpp"
#include "te/weighted_fib.hpp"
