#include "te/wcmp.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "graph/bfs.hpp"
#include "obs/metrics.hpp"

namespace flattree::te {

namespace {

obs::Counter c_wcmp_compiles("te.wcmp.compiles");
obs::Counter c_wcmp_entries("te.wcmp.entries");
obs::Counter c_wcmp_rules("te.wcmp.rules");
obs::Counter c_wcmp_weight("te.wcmp.weight_total");

void count_table(const WeightedFib& fib) {
  c_wcmp_compiles.inc();
  c_wcmp_entries.add(fib.entry_count());
  c_wcmp_rules.add(fib.rule_count());
  c_wcmp_weight.add(fib.total_weight());
}

/// Installs one quantized entry, pruning zero-weight rules.
void install_entry(WeightedFib& fib, NodeId at, NodeId dst,
                   const std::vector<graph::LinkId>& links,
                   const std::vector<double>& shares, std::uint32_t budget) {
  std::vector<std::uint32_t> weights = quantize_weights(shares, budget);
  for (std::size_t i = 0; i < links.size(); ++i)
    if (weights[i] > 0) fib.add_route(at, dst, links[i], weights[i]);
}

}  // namespace

std::vector<std::uint32_t> quantize_weights(const std::vector<double>& shares,
                                            std::uint32_t budget) {
  if (budget == 0) throw std::invalid_argument("quantize_weights: zero budget");
  double total = 0.0;
  for (double s : shares) total += std::max(s, 0.0);
  if (!(total > 0.0))
    throw std::invalid_argument("quantize_weights: no positive share");

  std::vector<std::uint32_t> weights(shares.size(), 0);
  std::vector<std::pair<double, std::size_t>> remainders;  // (-remainder, index)
  remainders.reserve(shares.size());
  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    double share = std::max(shares[i], 0.0);
    // Divide before scaling so a finite total keeps the fraction in [0, 1];
    // an infinite share or total yields NaN (inf/inf) or 0 (finite/inf)
    // here, never an out-of-range cast (which would be UB). Non-finite or
    // oversized `exact` degrades to "no floor" / "full budget" and the
    // handout loops below conserve the remainder deterministically.
    double exact = share / total * static_cast<double>(budget);
    if (!(exact >= 0.0)) exact = 0.0;  // NaN or negative
    if (exact > static_cast<double>(budget)) exact = static_cast<double>(budget);
    std::uint32_t floor_w = static_cast<std::uint32_t>(exact);
    weights[i] = floor_w;
    assigned += floor_w;
    remainders.emplace_back(-(exact - static_cast<double>(floor_w)), i);
  }
  // Hand out the leftover units by descending remainder; sort is on
  // (-remainder, index) so ties deterministically favor the lower index.
  std::sort(remainders.begin(), remainders.end());
  // Guard the unsigned subtraction: should floor rounding ever land past
  // the budget, an unchecked `budget - assigned` would underflow and the
  // drain loop below would hand out ~2^64 units. Shave the excess by
  // *ascending* remainder (reverse of the handout order) instead.
  while (assigned > budget) {
    bool shaved = false;
    for (auto it = remainders.rbegin(); assigned > budget && it != remainders.rend();
         ++it) {
      if (weights[it->second] > 0) {
        --weights[it->second];
        --assigned;
        shaved = true;
      }
    }
    if (!shaved)
      throw std::logic_error("quantize_weights: over-assignment with no weight to shave");
  }
  std::uint64_t leftover = budget - assigned;
  for (std::size_t r = 0; leftover > 0 && r < remainders.size(); ++r) {
    ++weights[remainders[r].second];
    --leftover;
  }
  // Exact conservation is an invariant validators check, so drain any
  // residue round-robin over the positive shares — and fail loudly rather
  // than spin if no positive share exists to absorb it.
  while (leftover > 0) {
    bool drained = false;
    for (std::size_t i = 0; leftover > 0 && i < weights.size(); ++i) {
      if (shares[i] > 0.0) {
        ++weights[i];
        --leftover;
        drained = true;
      }
    }
    if (!drained)
      throw std::logic_error("quantize_weights: residue with no positive share to absorb");
  }
  return weights;
}

WeightedFib compile_wcmp_paths(const topo::Topology& topo, routing::Routing& routing,
                               const std::vector<std::pair<NodeId, NodeId>>& pairs,
                               const WcmpOptions& options) {
  WeightedFib fib(topo.switch_count(), options.weight_budget);
  // Multiplicity tally: (at, dst) -> link -> count. Ordered maps keep the
  // installation order (and thus select()'s weight-line layout) a pure
  // function of the pair set, independent of hash-map iteration order.
  std::map<std::pair<NodeId, NodeId>, std::map<graph::LinkId, double>> tally;
  for (auto [src, dst] : pairs) {
    if (src == dst) continue;
    for (const graph::Path& path : routing.paths(src, dst))
      for (std::size_t i = 0; i < path.links.size(); ++i)
        tally[{path.nodes[i], dst}][path.links[i]] += 1.0;
  }
  for (const auto& [key, links] : tally) {
    std::vector<graph::LinkId> ids;
    std::vector<double> shares;
    ids.reserve(links.size());
    shares.reserve(links.size());
    for (const auto& [link, count] : links) {
      ids.push_back(link);
      shares.push_back(count);
    }
    install_entry(fib, key.first, key.second, ids, shares, options.weight_budget);
  }
  count_table(fib);
  return fib;
}

WeightedFib compile_wcmp_mcf(const topo::Topology& topo,
                             const std::vector<std::pair<NodeId, NodeId>>& pairs,
                             const std::vector<double>& arc_flow,
                             const WcmpOptions& options) {
  const graph::Graph& g = topo.graph();
  if (arc_flow.size() != g.link_count() * 2)
    throw std::invalid_argument("compile_wcmp_mcf: arc_flow size mismatch");
  WeightedFib fib(topo.switch_count(), options.weight_budget);

  // Group sources by destination: entries are per (switch, dst), so the
  // shortest-path DAG and its reachable closure are shared per dst.
  std::map<NodeId, std::vector<NodeId>> by_dst;
  for (auto [src, dst] : pairs)
    if (src != dst) by_dst[dst].push_back(src);

  for (const auto& [dst, sources] : by_dst) {
    std::vector<std::uint32_t> dist = graph::bfs_distances(g, dst);
    // Forward closure from the sources along distance-decreasing arcs:
    // exactly the switches a greedy walk can visit.
    std::vector<char> relevant(g.node_count(), 0);
    std::vector<NodeId> stack;
    for (NodeId src : sources) {
      if (dist[src] == graph::kUnreachable || relevant[src]) continue;
      relevant[src] = 1;
      stack.push_back(src);
    }
    std::vector<NodeId> order;
    while (!stack.empty()) {
      NodeId u = stack.back();
      stack.pop_back();
      if (u == dst) continue;
      order.push_back(u);
      for (const graph::Arc& arc : g.neighbors(u)) {
        if (dist[arc.to] + 1 != dist[u]) continue;
        if (!relevant[arc.to]) {
          relevant[arc.to] = 1;
          stack.push_back(arc.to);
        }
      }
    }
    // Deterministic entry order regardless of DFS discovery order.
    std::sort(order.begin(), order.end());
    for (NodeId u : order) {
      std::vector<graph::LinkId> ids;
      std::vector<double> shares;
      double flow_total = 0.0;
      for (const graph::Arc& arc : g.neighbors(u)) {
        if (dist[arc.to] + 1 != dist[u]) continue;
        const graph::Link& l = g.link(arc.link);
        double flow = arc_flow[2 * arc.link + (l.a == u ? 0 : 1)];
        ids.push_back(arc.link);
        shares.push_back(std::max(flow, 0.0));
        flow_total += std::max(flow, 0.0);
      }
      if (ids.empty()) continue;  // cannot happen for finite dist > 0
      // A solver may route nothing through this switch toward dst (it only
      // carries other commodities); fall back to the even ECMP split.
      if (!(flow_total > 0.0)) std::fill(shares.begin(), shares.end(), 1.0);
      install_entry(fib, u, dst, ids, shares, options.weight_budget);
    }
  }
  count_table(fib);
  return fib;
}

}  // namespace flattree::te
